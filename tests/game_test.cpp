// Unit and property tests for pg::game -- matrix games, the simplex LP
// solver, iterative equilibrium solvers, best responses and saddle points,
// and the parallel solver engine's bit-identity contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "game/best_response.h"
#include "game/lp.h"
#include "game/matrix_game.h"
#include "game/pure_ne.h"
#include "game/solvers.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "util/rng.h"

namespace pg::game {
namespace {

MatrixGame rock_paper_scissors() {
  la::Matrix m(3, 3);
  const double v[3][3] = {{0, -1, 1}, {1, 0, -1}, {-1, 1, 0}};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) m(i, j) = v[i][j];
  return MatrixGame(std::move(m));
}

MatrixGame matching_pennies() {
  la::Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = -1;
  m(1, 0) = -1;
  m(1, 1) = 1;
  return MatrixGame(std::move(m));
}

MatrixGame saddle_game() {
  // Row 0 dominates; saddle at (0, 0) with value 2.
  la::Matrix m(2, 2);
  m(0, 0) = 2;
  m(0, 1) = 3;
  m(1, 0) = 1;
  m(1, 1) = 4;
  return MatrixGame(std::move(m));
}

/// 2x2 zero-sum game [[a, b], [c, d]] with no saddle has the closed-form
/// value (ad - bc) / (a + d - b - c).
double closed_form_2x2(double a, double b, double c, double d) {
  return (a * d - b * c) / (a + d - b - c);
}

// ------------------------------------------------------------ matrix_game

TEST(MatrixGameTest, ExpectedPayoffBilinear) {
  const MatrixGame g = matching_pennies();
  EXPECT_DOUBLE_EQ(g.expected_payoff({1.0, 0.0}, {1.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(g.expected_payoff({0.5, 0.5}, {0.5, 0.5}), 0.0);
}

TEST(MatrixGameTest, RowAndColPayoffVectors) {
  const MatrixGame g = saddle_game();
  EXPECT_EQ(g.row_payoffs({1.0, 0.0}), (std::vector<double>{2.0, 1.0}));
  EXPECT_EQ(g.col_payoffs({0.0, 1.0}), (std::vector<double>{1.0, 4.0}));
}

TEST(MatrixGameTest, MaximinMinimax) {
  const MatrixGame g = saddle_game();
  EXPECT_DOUBLE_EQ(g.maximin_value(), 2.0);
  EXPECT_DOUBLE_EQ(g.minimax_value(), 2.0);
  const MatrixGame mp = matching_pennies();
  EXPECT_DOUBLE_EQ(mp.maximin_value(), -1.0);
  EXPECT_DOUBLE_EQ(mp.minimax_value(), 1.0);
}

TEST(MatrixGameTest, StrategyValidation) {
  EXPECT_TRUE(is_distribution({0.5, 0.5}));
  EXPECT_FALSE(is_distribution({0.5, 0.6}));
  EXPECT_FALSE(is_distribution({-0.1, 1.1}));
  EXPECT_FALSE(is_distribution({}));
  EXPECT_EQ(normalize({2.0, 2.0}), (MixedStrategy{0.5, 0.5}));
  EXPECT_THROW((void)normalize({0.0, 0.0}), std::invalid_argument);
}

TEST(MatrixGameTest, SizeMismatchThrows) {
  const MatrixGame g = matching_pennies();
  EXPECT_THROW((void)g.expected_payoff({1.0}, {0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW((void)g.row_payoffs({1.0, 0.0, 0.0}), std::invalid_argument);
}

// -------------------------------------------------------------------- lp

TEST(LpTest, SolvesTextbookProblem) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), obj 36.
  LpProblem p;
  p.a = la::Matrix(3, 2);
  p.a(0, 0) = 1;
  p.a(1, 1) = 2;
  p.a(2, 0) = 3;
  p.a(2, 1) = 2;
  p.b = {4, 12, 18};
  p.c = {3, 5};
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 6.0, 1e-9);
}

TEST(LpTest, DualPricesSatisfyStrongDuality) {
  LpProblem p;
  p.a = la::Matrix(3, 2);
  p.a(0, 0) = 1;
  p.a(1, 1) = 2;
  p.a(2, 0) = 3;
  p.a(2, 1) = 2;
  p.b = {4, 12, 18};
  p.c = {3, 5};
  const LpSolution s = solve_lp(p);
  double dual_obj = 0.0;
  for (std::size_t i = 0; i < p.b.size(); ++i) {
    EXPECT_GE(s.dual[i], -1e-9);
    dual_obj += s.dual[i] * p.b[i];
  }
  EXPECT_NEAR(dual_obj, s.objective, 1e-9);
}

TEST(LpTest, DetectsUnbounded) {
  LpProblem p;
  p.a = la::Matrix(1, 2);
  p.a(0, 0) = 1.0;  // y unconstrained above
  p.b = {1.0};
  p.c = {0.0, 1.0};
  EXPECT_EQ(solve_lp(p).status, LpStatus::kUnbounded);
}

TEST(LpTest, ZeroObjectiveIsOptimalAtOrigin) {
  LpProblem p;
  p.a = la::Matrix(1, 1);
  p.a(0, 0) = 1.0;
  p.b = {5.0};
  p.c = {-1.0};  // maximizing -x -> x = 0
  const LpSolution s = solve_lp(p);
  EXPECT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-12);
  EXPECT_NEAR(s.x[0], 0.0, 1e-12);
}

TEST(LpTest, RejectsNegativeRhs) {
  LpProblem p;
  p.a = la::Matrix(1, 1);
  p.a(0, 0) = 1.0;
  p.b = {-1.0};
  p.c = {1.0};
  EXPECT_THROW((void)solve_lp(p), std::invalid_argument);
}

TEST(LpTest, RejectsDimensionMismatch) {
  LpProblem p;
  p.a = la::Matrix(2, 2);
  p.b = {1.0};  // wrong size
  p.c = {1.0, 1.0};
  EXPECT_THROW((void)solve_lp(p), std::invalid_argument);
}

TEST(LpTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints (degenerate vertices): Bland's rule
  // must still terminate.
  LpProblem p;
  p.a = la::Matrix(4, 2);
  p.a(0, 0) = 1;
  p.a(1, 0) = 1;  // duplicate of constraint 0
  p.a(2, 1) = 1;
  p.a(3, 0) = 1;
  p.a(3, 1) = 1;
  p.b = {1, 1, 1, 1};
  p.c = {1, 1};
  const LpSolution s = solve_lp(p);
  EXPECT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-9);
}

// --------------------------------------------------------------- solvers

TEST(SolversTest, LpSolvesRps) {
  const auto eq = solve_lp_equilibrium(rock_paper_scissors());
  EXPECT_NEAR(eq.value, 0.0, 1e-9);
  for (double p : eq.row_strategy) EXPECT_NEAR(p, 1.0 / 3.0, 1e-6);
  for (double q : eq.col_strategy) EXPECT_NEAR(q, 1.0 / 3.0, 1e-6);
}

TEST(SolversTest, LpSolvesMatchingPennies) {
  const auto eq = solve_lp_equilibrium(matching_pennies());
  EXPECT_NEAR(eq.value, 0.0, 1e-9);
  EXPECT_NEAR(eq.row_strategy[0], 0.5, 1e-6);
  EXPECT_NEAR(eq.col_strategy[0], 0.5, 1e-6);
}

TEST(SolversTest, LpSolvesSaddleGame) {
  const auto eq = solve_lp_equilibrium(saddle_game());
  EXPECT_NEAR(eq.value, 2.0, 1e-9);
  EXPECT_NEAR(eq.row_strategy[0], 1.0, 1e-6);
  EXPECT_NEAR(eq.col_strategy[0], 1.0, 1e-6);
}

TEST(SolversTest, LpMatchesClosedForm2x2) {
  // Random-ish 2x2 games without saddle points.
  const double cases[][4] = {
      {3, -1, -2, 4}, {0, 2, 3, -1}, {5, 1, 2, 4}, {-1, 1, 2, -2}};
  for (const auto& c : cases) {
    la::Matrix m(2, 2);
    m(0, 0) = c[0];
    m(0, 1) = c[1];
    m(1, 0) = c[2];
    m(1, 1) = c[3];
    const MatrixGame g(std::move(m));
    if (has_pure_equilibrium(g)) continue;
    const auto eq = solve_lp_equilibrium(g);
    EXPECT_NEAR(eq.value, closed_form_2x2(c[0], c[1], c[2], c[3]), 1e-8);
  }
}

TEST(SolversTest, LpEquilibriumHasZeroExploitability) {
  const auto g = rock_paper_scissors();
  const auto eq = solve_lp_equilibrium(g);
  EXPECT_NEAR(exploitability(g, eq.row_strategy, eq.col_strategy), 0.0, 1e-9);
}

TEST(SolversTest, LpOnRandomGamesIsUnexploitable) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 2 + rng.uniform_index(6);
    const std::size_t n = 2 + rng.uniform_index(6);
    la::Matrix a(m, n);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        a(i, j) = rng.uniform(-5.0, 5.0);
      }
    }
    const MatrixGame g(std::move(a));
    const auto eq = solve_lp_equilibrium(g);
    EXPECT_NEAR(exploitability(g, eq.row_strategy, eq.col_strategy), 0.0,
                1e-7)
        << "trial " << trial;
    // Value sandwiched between the pure security levels.
    EXPECT_GE(eq.value, g.maximin_value() - 1e-9);
    EXPECT_LE(eq.value, g.minimax_value() + 1e-9);
  }
}

TEST(SolversTest, FictitiousPlayConvergesOnRps) {
  const auto g = rock_paper_scissors();
  const auto eq = solve_fictitious_play(g, {.iterations = 50000});
  EXPECT_LT(exploitability(g, eq.row_strategy, eq.col_strategy), 0.02);
  for (double p : eq.row_strategy) EXPECT_NEAR(p, 1.0 / 3.0, 0.05);
}

TEST(SolversTest, MultiplicativeWeightsConvergesOnRps) {
  const auto g = rock_paper_scissors();
  const auto eq = solve_multiplicative_weights(g, {.iterations = 50000});
  EXPECT_LT(exploitability(g, eq.row_strategy, eq.col_strategy), 0.02);
}

TEST(SolversTest, IterativeSolversAgreeWithLpValue) {
  la::Matrix m(3, 4);
  const double v[3][4] = {
      {2, -1, 3, 0}, {-2, 4, -1, 1}, {1, 1, -2, 3}};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 4; ++j) m(i, j) = v[i][j];
  const MatrixGame g(std::move(m));
  const double exact = solve_lp_equilibrium(g).value;
  const auto fp = solve_fictitious_play(g, {.iterations = 200000});
  const auto mw = solve_multiplicative_weights(g, {.iterations = 100000});
  EXPECT_NEAR(fp.value, exact, 0.02);
  EXPECT_NEAR(mw.value, exact, 0.02);
}

TEST(SolversTest, IterativeConfigValidation) {
  const auto g = matching_pennies();
  EXPECT_THROW((void)solve_fictitious_play(g, {.iterations = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)solve_multiplicative_weights(g, {.iterations = 0}),
               std::invalid_argument);
}

// ------------------------------------------------- parallel solver engine

MatrixGame random_game(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  la::Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-5.0, 5.0);
    }
  }
  return MatrixGame(std::move(a));
}

/// Thread counts the bit-identity contract is asserted at: one worker,
/// a fixed small pool, and whatever this machine offers.
std::vector<std::size_t> contract_thread_counts() {
  return {1, 4, runtime::default_thread_count()};
}

TEST(ParallelSolverTest, LpEquilibriumBitIdenticalAcrossThreadCounts) {
  // 96x80 keeps the tableau wide enough that the elimination actually
  // chunks (grain = 4096 cells), so the parallel path is exercised.
  const MatrixGame g = random_game(96, 80, 7);
  const auto serial = solve_lp_equilibrium(g);
  for (std::size_t threads : contract_thread_counts()) {
    runtime::ThreadPoolExecutor exec(threads);
    const auto parallel = solve_lp_equilibrium(g, &exec);
    // EXPECT_EQ, not NEAR: the contract is bit-identity.
    EXPECT_EQ(parallel.value, serial.value) << threads << " threads";
    EXPECT_EQ(parallel.row_strategy, serial.row_strategy);
    EXPECT_EQ(parallel.col_strategy, serial.col_strategy);
  }
}

TEST(ParallelSolverTest, RawLpSolutionBitIdenticalIncludingIterations) {
  LpProblem p;
  p.a = la::Matrix(40, 60);
  util::Rng rng(21);
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 60; ++j) {
      p.a(i, j) = rng.uniform(0.1, 4.0);
    }
  }
  p.b.assign(40, 1.0);
  p.c.assign(60, 1.0);
  const LpSolution serial = solve_lp(p);
  ASSERT_EQ(serial.status, LpStatus::kOptimal);
  for (std::size_t threads : contract_thread_counts()) {
    runtime::ThreadPoolExecutor exec(threads);
    const LpSolution parallel = solve_lp(p, &exec);
    EXPECT_EQ(parallel.status, serial.status);
    EXPECT_EQ(parallel.objective, serial.objective);
    EXPECT_EQ(parallel.x, serial.x);
    EXPECT_EQ(parallel.dual, serial.dual);
    // Serial and parallel walk the same pivot sequence.
    EXPECT_EQ(parallel.iterations, serial.iterations);
  }
}

TEST(ParallelSolverTest, FictitiousPlayBitIdenticalAcrossThreadCounts) {
  const MatrixGame g = random_game(64, 48, 9);
  const auto serial = solve_fictitious_play(g, {.iterations = 5000});
  for (std::size_t threads : contract_thread_counts()) {
    runtime::ThreadPoolExecutor exec(threads);
    const auto parallel = solve_fictitious_play(g, {.iterations = 5000}, &exec);
    EXPECT_EQ(parallel.value, serial.value) << threads << " threads";
    EXPECT_EQ(parallel.row_strategy, serial.row_strategy);
    EXPECT_EQ(parallel.col_strategy, serial.col_strategy);
  }
}

TEST(ParallelSolverTest, MultiplicativeWeightsBitIdenticalAcrossThreadCounts) {
  const MatrixGame g = random_game(40, 56, 11);
  const auto serial = solve_multiplicative_weights(g, {.iterations = 2000});
  for (std::size_t threads : contract_thread_counts()) {
    runtime::ThreadPoolExecutor exec(threads);
    const auto parallel =
        solve_multiplicative_weights(g, {.iterations = 2000}, &exec);
    EXPECT_EQ(parallel.value, serial.value) << threads << " threads";
    EXPECT_EQ(parallel.row_strategy, serial.row_strategy);
    EXPECT_EQ(parallel.col_strategy, serial.col_strategy);
  }
}

TEST(ParallelSolverTest, IterativeBackendsAllBitIdenticalOnNarrowGames) {
  // The persistent-team path exists FOR narrow games; force each backend
  // explicitly so the test cannot silently stop covering one if the
  // kAuto heuristics move.
  for (const std::size_t size : {std::size_t{8}, std::size_t{24},
                                 std::size_t{96}}) {
    const MatrixGame g = random_game(size, size, 100 + size);
    IterativeConfig cfg{.iterations = 1500};
    const auto serial = solve_fictitious_play(g, cfg);
    for (std::size_t threads : contract_thread_counts()) {
      runtime::ThreadPoolExecutor exec(threads);
      for (const auto backend :
           {IterativeBackend::kAuto, IterativeBackend::kDispatch,
            IterativeBackend::kTeam}) {
        cfg.backend = backend;
        const auto parallel = solve_fictitious_play(g, cfg, &exec);
        EXPECT_EQ(parallel.value, serial.value)
            << size << "x" << size << ", " << threads << " threads, backend "
            << static_cast<int>(backend);
        EXPECT_EQ(parallel.row_strategy, serial.row_strategy);
        EXPECT_EQ(parallel.col_strategy, serial.col_strategy);
      }
    }
  }
}

TEST(ParallelSolverTest, MultiplicativeWeightsTeamBackendBitIdentical) {
  const MatrixGame g = random_game(24, 16, 17);
  IterativeConfig cfg{.iterations = 800};
  const auto serial = solve_multiplicative_weights(g, cfg);
  for (std::size_t threads : contract_thread_counts()) {
    runtime::ThreadPoolExecutor exec(threads);
    for (const auto backend :
         {IterativeBackend::kDispatch, IterativeBackend::kTeam}) {
      cfg.backend = backend;
      const auto parallel = solve_multiplicative_weights(g, cfg, &exec);
      EXPECT_EQ(parallel.value, serial.value)
          << threads << " threads, backend " << static_cast<int>(backend);
      EXPECT_EQ(parallel.row_strategy, serial.row_strategy);
      EXPECT_EQ(parallel.col_strategy, serial.col_strategy);
    }
  }
}

TEST(ParallelSolverTest, BackToBackTeamSolvesReuseTheParkedTeam) {
  // The team-backend solvers lease their PersistentTeam from a process-
  // wide park instead of spawning one per solve. The park always keeps
  // the most recently released team (evicting the oldest when full), so
  // a repeat solve of the same shape MUST reuse -- and reuse must not
  // perturb the answer.
  const MatrixGame g = random_game(96, 96, 31);
  IterativeConfig cfg{.iterations = 1500, .backend = IterativeBackend::kTeam};
  const auto serial = solve_fictitious_play(g, {.iterations = 1500});
  runtime::ThreadPoolExecutor exec(4);

  const auto first = solve_fictitious_play(g, cfg, &exec);
  const std::uint64_t reused_before = obs::counter("obs.team.reused").value();
  const auto second = solve_fictitious_play(g, cfg, &exec);
  const std::uint64_t reused_after = obs::counter("obs.team.reused").value();

  EXPECT_EQ(first.value, serial.value);
  EXPECT_EQ(second.value, serial.value);
  EXPECT_EQ(second.row_strategy, serial.row_strategy);
  EXPECT_EQ(second.col_strategy, serial.col_strategy);
#ifndef PG_OBS_DISABLED
  EXPECT_GT(reused_after, reused_before)
      << "second solve of the same shape should lease the parked team";
#else
  (void)reused_before;
  (void)reused_after;
#endif
}

TEST(ParallelSolverTest, SolveInsidePoolTaskStaysIdenticalWithoutATeam) {
  // A solve nested inside a pool task (a point-parallel sweep point, a
  // solver-ablation cell) must not stand up a resident team -- and must
  // still return the serial answer. kTeam demotes to the dispatch path
  // there (on_pool_worker() gate), which itself runs inline when nested.
  const MatrixGame g = random_game(32, 32, 23);
  IterativeConfig cfg{.iterations = 1000, .learning_rate = 0.0,
                      .backend = IterativeBackend::kTeam};
  const auto serial = solve_fictitious_play(g, {.iterations = 1000});
  runtime::ThreadPoolExecutor exec(4);
  std::vector<Equilibrium> results(4);
  exec.parallel_for_nested(0, results.size(), 1, [&](std::size_t i) {
    results[i] = solve_fictitious_play(g, cfg, &exec);
  });
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].value, serial.value) << "task " << i;
    EXPECT_EQ(results[i].row_strategy, serial.row_strategy);
    EXPECT_EQ(results[i].col_strategy, serial.col_strategy);
  }
}

// ------------------------------------------- iterations + degenerate games

TEST(LpTest, IterationsCountsPivots) {
  // The textbook problem needs at least two pivots to reach (2, 6).
  LpProblem p;
  p.a = la::Matrix(3, 2);
  p.a(0, 0) = 1;
  p.a(1, 1) = 2;
  p.a(2, 0) = 3;
  p.a(2, 1) = 2;
  p.b = {4, 12, 18};
  p.c = {3, 5};
  const LpSolution s = solve_lp(p);
  EXPECT_GE(s.iterations, 2u);
}

TEST(LpTest, IterationsZeroWhenOriginOptimal) {
  LpProblem p;
  p.a = la::Matrix(1, 1);
  p.a(0, 0) = 1.0;
  p.b = {5.0};
  p.c = {-1.0};  // maximizing -x -> the all-slack basis is already optimal
  const LpSolution s = solve_lp(p);
  EXPECT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_EQ(s.iterations, 0u);
}

TEST(SolversTest, OneByNGameReducesToColumnMinimum) {
  // Row player has a single action; the column player simply picks the
  // smallest entry. Degenerate shapes exercise the solvers' edge paths
  // (1-chunk scans, single-row tableaus).
  la::Matrix m(1, 4);
  m(0, 0) = 3.0;
  m(0, 1) = -1.0;
  m(0, 2) = 2.0;
  m(0, 3) = 0.5;
  const MatrixGame g(std::move(m));
  const auto lp = solve_lp_equilibrium(g);
  EXPECT_NEAR(lp.value, -1.0, 1e-9);
  ASSERT_EQ(lp.row_strategy.size(), 1u);
  EXPECT_NEAR(lp.row_strategy[0], 1.0, 1e-12);
  EXPECT_NEAR(lp.col_strategy[1], 1.0, 1e-6);

  // FP spends its first iteration on action 0 before locking onto the
  // best response, so the 1000-iteration average is 999/1000.
  const auto fp = solve_fictitious_play(g, {.iterations = 1000});
  EXPECT_NEAR(fp.value, -1.0, 0.01);
  EXPECT_NEAR(fp.col_strategy[1], 1.0, 2e-3);
}

TEST(SolversTest, NByOneGameReducesToRowMaximum) {
  la::Matrix m(3, 1);
  m(0, 0) = -2.0;
  m(1, 0) = 4.0;
  m(2, 0) = 1.0;
  const MatrixGame g(std::move(m));
  const auto lp = solve_lp_equilibrium(g);
  EXPECT_NEAR(lp.value, 4.0, 1e-9);
  EXPECT_NEAR(lp.row_strategy[1], 1.0, 1e-6);
  ASSERT_EQ(lp.col_strategy.size(), 1u);
  EXPECT_NEAR(lp.col_strategy[0], 1.0, 1e-12);

  const auto fp = solve_fictitious_play(g, {.iterations = 1000});
  EXPECT_NEAR(fp.value, 4.0, 0.01);
  EXPECT_NEAR(fp.row_strategy[1], 1.0, 2e-3);
}

TEST(SolversTest, AllEqualPayoffGameHasFlatValue) {
  // Every strategy pair yields the same payoff: the value is pinned and
  // any returned distributions must be valid and unexploitable.
  la::Matrix m(3, 5, 2.5);
  const MatrixGame g(std::move(m));
  const auto lp = solve_lp_equilibrium(g);
  EXPECT_NEAR(lp.value, 2.5, 1e-9);
  EXPECT_TRUE(is_distribution(lp.row_strategy, 1e-9));
  EXPECT_TRUE(is_distribution(lp.col_strategy, 1e-9));
  EXPECT_NEAR(exploitability(g, lp.row_strategy, lp.col_strategy), 0.0, 1e-9);

  const auto fp = solve_fictitious_play(g, {.iterations = 500});
  EXPECT_NEAR(fp.value, 2.5, 1e-12);
  EXPECT_TRUE(is_distribution(fp.row_strategy, 1e-9));
  EXPECT_NEAR(exploitability(g, fp.row_strategy, fp.col_strategy), 0.0,
              1e-12);
}

// ---------------------------------------------------------- best_response

TEST(BestResponseTest, PicksArgmaxAndArgmin) {
  const MatrixGame g = saddle_game();
  const auto br_row = best_row_response(g, {1.0, 0.0});
  EXPECT_EQ(br_row.action, 0u);
  EXPECT_DOUBLE_EQ(br_row.payoff, 2.0);
  const auto br_col = best_col_response(g, {0.0, 1.0});
  EXPECT_EQ(br_col.action, 0u);
  EXPECT_DOUBLE_EQ(br_col.payoff, 1.0);
}

TEST(BestResponseTest, ExploitabilityZeroOnlyAtEquilibrium) {
  const auto g = matching_pennies();
  EXPECT_NEAR(exploitability(g, {0.5, 0.5}, {0.5, 0.5}), 0.0, 1e-12);
  EXPECT_GT(exploitability(g, {1.0, 0.0}, {0.5, 0.5}), 0.4);
  EXPECT_GT(exploitability(g, {0.5, 0.5}, {0.9, 0.1}), 0.4);
}

// --------------------------------------------------------------- pure_ne

TEST(PureNeTest, FindsSaddlePoint) {
  const auto saddles = find_pure_equilibria(saddle_game());
  ASSERT_EQ(saddles.size(), 1u);
  EXPECT_EQ(saddles[0].row, 0u);
  EXPECT_EQ(saddles[0].col, 0u);
  EXPECT_DOUBLE_EQ(saddles[0].value, 2.0);
  EXPECT_TRUE(has_pure_equilibrium(saddle_game()));
  EXPECT_DOUBLE_EQ(pure_strategy_gap(saddle_game()), 0.0);
}

TEST(PureNeTest, NoSaddleInMatchingPennies) {
  EXPECT_TRUE(find_pure_equilibria(matching_pennies()).empty());
  EXPECT_FALSE(has_pure_equilibrium(matching_pennies()));
  EXPECT_DOUBLE_EQ(pure_strategy_gap(matching_pennies()), 2.0);
}

TEST(PureNeTest, AllCellsSaddleInConstantGame) {
  la::Matrix m(2, 3, 7.0);
  const auto saddles = find_pure_equilibria(MatrixGame(std::move(m)));
  EXPECT_EQ(saddles.size(), 6u);
}

TEST(PureNeTest, GapMatchesSecurityLevels) {
  const auto g = rock_paper_scissors();
  EXPECT_DOUBLE_EQ(pure_strategy_gap(g),
                   g.minimax_value() - g.maximin_value());
}

// Property sweep: on random games, saddle-point existence must coincide
// with a zero duality gap, and the LP value must lie inside the gap.
class RandomGameProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGameProperty, SaddleIffZeroGapAndLpInGap) {
  util::Rng rng(GetParam());
  const std::size_t m = 2 + rng.uniform_index(5);
  const std::size_t n = 2 + rng.uniform_index(5);
  la::Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = static_cast<double>(rng.uniform_int(-4, 4));
    }
  }
  const MatrixGame g(std::move(a));
  const bool saddle = !find_pure_equilibria(g).empty();
  EXPECT_EQ(saddle, has_pure_equilibrium(g));
  const auto eq = solve_lp_equilibrium(g);
  EXPECT_GE(eq.value, g.maximin_value() - 1e-9);
  EXPECT_LE(eq.value, g.minimax_value() + 1e-9);
  if (saddle) {
    EXPECT_NEAR(eq.value, g.maximin_value(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGames, RandomGameProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

// ----------------------------------------------------- Dantzig pricing

MatrixGame random_square_game(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  la::Matrix a(size, size);
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = 0; j < size; ++j) {
      a(i, j) = rng.uniform(-5.0, 5.0);
    }
  }
  return MatrixGame(std::move(a));
}

TEST(LpPricingTest, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_lp_pricing("bland"), LpPricing::kBland);
  EXPECT_EQ(parse_lp_pricing("dantzig"), LpPricing::kDantzig);
  EXPECT_THROW((void)parse_lp_pricing("steepest"), std::invalid_argument);
  EXPECT_STREQ(lp_pricing_name(LpPricing::kBland), "bland");
  EXPECT_STREQ(lp_pricing_name(LpPricing::kDantzig), "dantzig");
}

TEST(LpPricingTest, DantzigReachesTheSameGameValue) {
  // Both pricing rules walk to an optimal vertex; the objective (and
  // hence the game value) must agree to solver tolerance, and both
  // strategies must be unexploitable. Dantzig typically needs no more
  // pivots than Bland; assert it at least terminates well under the
  // fallback budget (i.e. its own pricing finished the solve).
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const MatrixGame g = random_square_game(40, seed);
    const Equilibrium bland =
        solve_lp_equilibrium(g, nullptr, {LpPricing::kBland});
    const Equilibrium dantzig =
        solve_lp_equilibrium(g, nullptr, {LpPricing::kDantzig});
    EXPECT_NEAR(bland.value, dantzig.value, 1e-9);
    EXPECT_LT(exploitability(g, dantzig.row_strategy, dantzig.col_strategy),
              1e-8);
  }
}

TEST(LpPricingTest, DantzigIsBitIdenticalAcrossThreadCounts) {
  // The Dantzig pricing scan is an exact parallel_argmin, so the parallel
  // pivot sequence -- and the returned equilibrium -- must equal the
  // serial one bit for bit, the same contract the Bland path honors.
  const MatrixGame g = random_square_game(48, 99);
  const Equilibrium serial =
      solve_lp_equilibrium(g, nullptr, {LpPricing::kDantzig});
  runtime::ThreadPoolExecutor four(4);
  const Equilibrium parallel =
      solve_lp_equilibrium(g, &four, {LpPricing::kDantzig});
  EXPECT_EQ(serial.value, parallel.value);
  EXPECT_EQ(serial.row_strategy, parallel.row_strategy);
  EXPECT_EQ(serial.col_strategy, parallel.col_strategy);
}

TEST(LpPricingTest, DantzigUsuallyPivotsLess) {
  // The motivation for the flag: on random dense games Dantzig's
  // steepest-reduced-cost choice should not do WORSE than Bland's
  // smallest-index walk. Compare total pivots across a small family.
  std::size_t bland_pivots = 0;
  std::size_t dantzig_pivots = 0;
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    const MatrixGame g = random_square_game(32, seed);
    const la::Matrix& payoff = g.payoff();
    double lo = 0.0;
    for (std::size_t i = 0; i < g.num_rows(); ++i) {
      for (std::size_t j = 0; j < g.num_cols(); ++j) {
        lo = std::min(lo, payoff(i, j));
      }
    }
    LpProblem problem;
    problem.a = la::Matrix(g.num_rows(), g.num_cols());
    for (std::size_t i = 0; i < g.num_rows(); ++i) {
      for (std::size_t j = 0; j < g.num_cols(); ++j) {
        problem.a(i, j) = payoff(i, j) + (1.0 - lo);
      }
    }
    problem.b.assign(g.num_rows(), 1.0);
    problem.c.assign(g.num_cols(), 1.0);
    bland_pivots += solve_lp(problem, nullptr, {LpPricing::kBland}).iterations;
    dantzig_pivots +=
        solve_lp(problem, nullptr, {LpPricing::kDantzig}).iterations;
  }
  EXPECT_LE(dantzig_pivots, bland_pivots);
}

}  // namespace
}  // namespace pg::game
