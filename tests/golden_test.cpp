// Golden-baseline regression suite: every registry scenario (plus one
// two-axis sweep grid) runs at a tiny seed-pinned size and its result is
// diffed against the committed JSON baseline in tests/golden/ through
// scenario::ResultDiff -- the same differ `pg_run --compare` uses, at
// the same tight tolerance the CI regression job applies.
//
// The committed artifacts are pairs:
//     tests/golden/<name>.spec   fully-pinned ScenarioSpec text
//     tests/golden/<name>.json   the JSON sink of running that spec
//
// A failure here means the reproduced numbers moved. If the change is
// intentional (an algorithm fix, a new metric), refresh the baseline:
//
//     pg_run --spec tests/golden/<name>.spec --out json --out-file new.json
//     pg_run --compare tests/golden/<name>.json new.json --update-baseline
//
// Timing values (_ms/_seconds), executor width, and cache traffic are
// excluded by the differ, so the comparison covers exactly the surface
// the engine guarantees to be deterministic. The tolerance absorbs
// libm/codegen ulp differences across build environments; on any single
// machine the runs are bit-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "scenario/diff.h"
#include "scenario/engine.h"
#include "scenario/registry.h"
#include "scenario/result.h"
#include "scenario/spec.h"

#ifndef PG_GOLDEN_DIR
#error "PG_GOLDEN_DIR must point at tests/golden (set by CMakeLists.txt)"
#endif

namespace pg::scenario {
namespace {

constexpr double kTolerance = 1e-6;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::vector<std::filesystem::path> golden_specs() {
  std::vector<std::filesystem::path> specs;
  for (const auto& entry :
       std::filesystem::directory_iterator(PG_GOLDEN_DIR)) {
    if (entry.path().extension() == ".spec") specs.push_back(entry.path());
  }
  std::sort(specs.begin(), specs.end());
  return specs;
}

TEST(GoldenTest, EveryRegistryScenarioHasABaseline) {
  std::set<std::string> covered;
  for (const auto& spec_path : golden_specs()) {
    const ScenarioSpec spec = ScenarioSpec::parse(read_file(spec_path));
    covered.insert(spec.name);
    // The committed pair must be complete.
    std::filesystem::path json_path = spec_path;
    json_path.replace_extension(".json");
    EXPECT_TRUE(std::filesystem::exists(json_path))
        << "baseline missing for " << spec_path;
  }
  for (const std::string& name : ScenarioRegistry::instance().names()) {
    EXPECT_TRUE(covered.count(name) == 1)
        << "registry scenario '" << name << "' has no golden baseline";
  }
}

TEST(GoldenTest, ResultsMatchCommittedBaselines) {
  const auto specs = golden_specs();
  ASSERT_FALSE(specs.empty()) << "no .spec files under " << PG_GOLDEN_DIR;
  for (const auto& spec_path : specs) {
    SCOPED_TRACE(spec_path.filename().string());
    const ScenarioSpec spec = ScenarioSpec::parse(read_file(spec_path));
    const ScenarioResult result = run_scenario(spec);
    std::ostringstream json;
    write_json(result, json);

    std::filesystem::path json_path = spec_path;
    json_path.replace_extension(".json");
    const JsonValue baseline = parse_json(read_file(json_path));
    const JsonValue candidate = parse_json(json.str());

    DiffOptions options;
    options.tolerance = kTolerance;
    const ResultDiff diff = diff_results(baseline, candidate, options);
    std::ostringstream report;
    write_diff_report(diff, options, report);
    EXPECT_TRUE(diff.clean())
        << "golden drift for " << spec.name << ":\n"
        << report.str()
        << "(intentional? refresh with pg_run --compare "
        << json_path.string() << " <new.json> --update-baseline)";
  }
}

// Distributed sharding must not be observable in the results: the
// committed sweep_grid baseline, a fresh single-process run, and a 3-way
// sharded run stitched with merge_partials all have to agree -- the
// sharded-vs-single comparison at tolerance 0 (bit-identity on one
// machine), the committed-baseline comparison at the usual cross-
// environment tolerance.
TEST(GoldenTest, ThreeWayShardMergeMatchesSingleProcessRun) {
  const std::filesystem::path spec_path =
      std::filesystem::path(PG_GOLDEN_DIR) / "sweep_grid.spec";
  ScenarioSpec spec = ScenarioSpec::parse(read_file(spec_path));
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() /
       ("pg_golden_shard_" +
        std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
          .string();
  std::filesystem::remove_all(cache_dir);
  spec.cache_dir = cache_dir;  // all three shards share one cache dir

  constexpr std::size_t kShards = 3;
  std::vector<std::pair<std::string, JsonValue>> partials;
  for (std::size_t i = 0; i < kShards; ++i) {
    const ScenarioResult part = run_scenario_shard(spec, {i, kShards});
    EXPECT_TRUE(part.partial.active());
    EXPECT_EQ(part.partial.shard, i);
    EXPECT_EQ(part.partial.total_shards, kShards);
    std::ostringstream json;
    write_json(part, json);
    partials.emplace_back("shard-" + std::to_string(i),
                          parse_json(json.str()));
  }
  const ScenarioResult merged = merge_partials(partials);

  std::ostringstream merged_json;
  write_json(merged, merged_json);
  const JsonValue candidate = parse_json(merged_json.str());

  // Bit-identity against a fresh single-process run of the same spec.
  const ScenarioResult full = run_scenario(spec);
  std::ostringstream full_json;
  write_json(full, full_json);
  {
    DiffOptions exact;
    exact.tolerance = 0.0;
    const ResultDiff diff =
        diff_results(parse_json(full_json.str()), candidate, exact);
    std::ostringstream report;
    write_diff_report(diff, exact, report);
    EXPECT_TRUE(diff.clean())
        << "3-way sharded merge drifted from the single-process run:\n"
        << report.str();
  }

  // And the merged artifact still matches the committed baseline.
  {
    std::filesystem::path json_path = spec_path;
    json_path.replace_extension(".json");
    DiffOptions options;
    options.tolerance = kTolerance;
    const ResultDiff diff =
        diff_results(parse_json(read_file(json_path)), candidate, options);
    std::ostringstream report;
    write_diff_report(diff, options, report);
    EXPECT_TRUE(diff.clean())
        << "3-way sharded merge drifted from the committed baseline:\n"
        << report.str();
  }

  // The shards populated the shared cache dir; a warm re-run of one
  // shard reuses the published retrains instead of recomputing them.
  const ScenarioResult warm = run_scenario_shard(spec, {1, kShards});
  EXPECT_EQ(warm.cache.cells_retrained, 0u)
      << "warm shard re-run over the shared cache dir must reuse "
         "published cells";
  EXPECT_GT(warm.cache.disk_entries_loaded, 0u);
  std::filesystem::remove_all(cache_dir);
}

}  // namespace
}  // namespace pg::scenario
