// End-to-end integration tests: the full paper pipeline (corpus -> sweep ->
// curve fit -> Algorithm 1 -> empirical evaluation) on a reduced testbed,
// asserting the *shape* claims of the paper's evaluation section.
#include <gtest/gtest.h>

#include "core/equilibrium.h"
#include "core/game_model.h"
#include "core/ne_properties.h"
#include "game/pure_ne.h"
#include "game/solvers.h"
#include "sim/curve_fit.h"
#include "sim/experiment.h"
#include "sim/mixed_eval.h"
#include "sim/pure_sweep.h"

namespace pg {
namespace {

struct Testbed {
  sim::ExperimentContext ctx;
  sim::PureSweepResult sweep;
  core::PayoffCurves curves;
};

const Testbed& testbed() {
  static const Testbed tb = [] {
    sim::ExperimentConfig cfg = sim::fast_config(42);
    cfg.corpus.n_instances = 1200;
    cfg.svm.epochs = 80;
    Testbed t{sim::prepare_experiment(cfg), {}, {}};
    t.sweep = sim::run_pure_sweep(t.ctx, sim::sweep_grid(0.50, 11), 2);
    t.curves = sim::fit_payoff_curves(t.sweep);
    return t;
  }();
  return tb;
}

TEST(IntegrationTest, CleanBaselineIsSpambaseLike) {
  // The paper's Fig. 1 starts just under 0.9 on clean Spambase.
  const auto& tb = testbed();
  EXPECT_GT(tb.ctx.clean_accuracy, 0.82);
  EXPECT_LT(tb.ctx.clean_accuracy, 0.99);
}

TEST(IntegrationTest, Fig1AttackAlwaysHurts) {
  for (const auto& pt : testbed().sweep.points) {
    EXPECT_LE(pt.accuracy_attacked, pt.accuracy_no_attack + 0.01)
        << "at p=" << pt.removal_fraction;
  }
}

TEST(IntegrationTest, Fig1InteriorOptimumExists) {
  // "the defender loses incentive to increase filter strength at some
  // point between 10% and 30%": the attacked curve has an interior max.
  const auto& pts = testbed().sweep.points;
  const double at_zero = pts.front().accuracy_attacked;
  const double at_max = pts.back().accuracy_attacked;
  double best = -1.0;
  double best_p = 0.0;
  for (const auto& pt : pts) {
    if (pt.accuracy_attacked > best) {
      best = pt.accuracy_attacked;
      best_p = pt.removal_fraction;
    }
  }
  EXPECT_GT(best, at_zero + 0.03) << "filtering must help under attack";
  EXPECT_GT(best_p, 0.0);
  EXPECT_LT(best_p, 0.50);
  // Past the optimum the curve declines (defender loses incentive).
  EXPECT_LT(at_max, best + 0.01);
}

TEST(IntegrationTest, Fig1UnfilteredAttackIsDevastating) {
  // At p=0 the attack drives accuracy toward the majority-vote floor,
  // like the paper's ~62% on Spambase.
  const auto& tb = testbed();
  const double at_zero = tb.sweep.points.front().accuracy_attacked;
  EXPECT_LT(at_zero, tb.ctx.clean_accuracy - 0.15);
}

TEST(IntegrationTest, FittedCurvesHaveGameTension) {
  // E must genuinely decay (the filter weakens the attacker) and Gamma
  // must genuinely grow (filtering costs accuracy) -- the two forces whose
  // balance creates the mixed equilibrium.
  const auto& c = testbed().curves;
  EXPECT_GT(c.damage(0.0), 1.5 * c.damage(0.45) - 1e-12);
  EXPECT_GE(c.cost(0.45), c.cost(0.1));
  EXPECT_GT(c.damage(0.0), 0.0);
}

TEST(IntegrationTest, Proposition1NoPureNeOnMeasuredCurves) {
  const auto& tb = testbed();
  const core::PoisoningGame game(tb.curves, tb.ctx.poison_budget);
  const auto report = core::analyze_pure_equilibria(game, 64);
  EXPECT_EQ(report.saddle_points, 0u);
  EXPECT_GT(report.gap, 0.0);
}

TEST(IntegrationTest, Algorithm1OnMeasuredCurvesIsIndifferent) {
  const auto& tb = testbed();
  const core::PoisoningGame game(tb.curves, tb.ctx.poison_budget);
  core::Algorithm1Config cfg;
  cfg.support_size = 3;
  const auto sol = core::compute_optimal_defense(game, cfg);
  const auto indiff = core::check_indifference(game, sol.strategy, 1e-3);
  EXPECT_TRUE(indiff.properly_mixed);
  EXPECT_TRUE(indiff.indifferent) << "spread " << indiff.relative_spread;
}

TEST(IntegrationTest, Table1MixedBeatsPredictedPureLoss) {
  // In the game model (measured curves), the mixed strategy's predicted
  // loss must beat every pure strategy's predicted loss -- the exact
  // statement behind Table 1.
  const auto& tb = testbed();
  const core::PoisoningGame game(tb.curves, tb.ctx.poison_budget);
  core::Algorithm1Config cfg;
  cfg.support_size = 3;
  const auto sol = core::compute_optimal_defense(game, cfg);

  double best_pure_loss = 1e300;
  for (double theta = 0.0; theta <= 0.50; theta += 0.005) {
    const double loss =
        static_cast<double>(tb.ctx.poison_budget) * tb.curves.damage(theta) +
        tb.curves.cost(theta);
    best_pure_loss = std::min(best_pure_loss, loss);
  }
  EXPECT_LT(sol.defender_loss, best_pure_loss + 1e-9);
}

TEST(IntegrationTest, Table1EmpiricalMixedCompetitiveWithBestPure) {
  // Empirical counterpart on the reduced testbed: the mixed defense's
  // adversarial accuracy must at least match the best pure defense within
  // measurement noise (on the full corpus it strictly wins; the reduced
  // corpus keeps CI time sane, so we allow a small tolerance band).
  const auto& tb = testbed();
  const core::PoisoningGame game(tb.curves, tb.ctx.poison_budget);
  core::Algorithm1Config acfg;
  acfg.support_size = 3;
  const auto sol = core::compute_optimal_defense(game, acfg);

  sim::MixedEvalConfig ecfg;
  ecfg.draws = 6;
  const auto eval = sim::evaluate_mixed_defense(tb.ctx, sol.strategy, ecfg);
  // The strict "mixed > every pure" ordering is asserted in predicted-loss
  // space (Table1MixedBeatsPredictedPureLoss) and measured at full corpus
  // scale by bench_table1; at CI scale the Monte-Carlo variance of the
  // adversarial accuracy (+-5-7%) would make a strict comparison flaky
  // (the paper itself lists the pure-scenario E/Gamma approximation as a
  // limitation). Here we assert the robust empirical facts:
  // the mixed defense decisively beats no defense...
  EXPECT_GT(eval.adversarial_accuracy,
            tb.sweep.points.front().accuracy_attacked + 0.02);
  // ...pays only a small no-attack cost relative to the clean baseline...
  EXPECT_GT(eval.no_attack_accuracy, tb.ctx.clean_accuracy - 0.05);
  // ...and lands within noise of the best pure defense. The band is
  // centered on measurements at draws = 6 over several stream seedings
  // (gap 0.12-0.15 on this reduced corpus): Algorithm 1 optimizes the
  // FITTED curves, and on 1200 instances the fitted E(p) understates the
  // measured damage of a mid-strength boundary attack, so the empirical
  // mixed-vs-pure gap here is curve-fit error, not solver error.
  const auto pure = sim::best_pure_defense(tb.sweep);
  EXPECT_GT(eval.adversarial_accuracy, pure.best_accuracy - 0.17);
}

TEST(IntegrationTest, LpCrossCheckOnMeasuredCurves) {
  // The discretized game's exact LP value and Algorithm 1's loss must
  // agree on the measured curves too (Proposition 2 cross-check).
  const auto& tb = testbed();
  const core::PoisoningGame game(tb.curves, tb.ctx.poison_budget);
  core::Algorithm1Config cfg;
  cfg.support_size = 5;
  const auto sol = core::compute_optimal_defense(game, cfg);
  const auto eq = game::solve_lp_equilibrium(game.discretize(120, 120));
  EXPECT_NEAR(sol.defender_loss, eq.value,
              0.2 * std::abs(eq.value) + 0.01);
}

TEST(IntegrationTest, WholePipelineDeterministic) {
  sim::ExperimentConfig cfg = sim::fast_config(7);
  cfg.corpus.n_instances = 400;
  cfg.svm.epochs = 20;
  const auto ctx1 = sim::prepare_experiment(cfg);
  const auto ctx2 = sim::prepare_experiment(cfg);
  const auto s1 = sim::run_pure_sweep(ctx1, {0.0, 0.2}, 1);
  const auto s2 = sim::run_pure_sweep(ctx2, {0.0, 0.2}, 1);
  for (std::size_t i = 0; i < s1.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.points[i].accuracy_attacked,
                     s2.points[i].accuracy_attacked);
    EXPECT_DOUBLE_EQ(s1.points[i].accuracy_no_attack,
                     s2.points[i].accuracy_no_attack);
  }
}

}  // namespace
}  // namespace pg
