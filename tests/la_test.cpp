// Unit and property tests for pg::la -- vector kernels, matrices, and the
// power-iteration eigensolver.
#include <gtest/gtest.h>

#include <cmath>

#include "la/eigen.h"
#include "la/matrix.h"
#include "la/vector_ops.h"
#include "util/rng.h"

namespace pg::la {
namespace {

// ----------------------------------------------------------- vector_ops.h

TEST(VectorOpsTest, DotAndNorm) {
  const Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  EXPECT_DOUBLE_EQ(squared_norm(a), 25.0);
}

TEST(VectorOpsTest, DotRejectsMismatch) {
  EXPECT_THROW((void)dot({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(VectorOpsTest, DistanceIsSymmetricAndZeroOnSelf) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, 6.0, 3.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(distance(b, a), 5.0);
  EXPECT_DOUBLE_EQ(distance(a, a), 0.0);
}

TEST(VectorOpsTest, AxpyAccumulates) {
  Vector y{1.0, 1.0};
  axpy(2.0, {3.0, 4.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
}

TEST(VectorOpsTest, AddSubtractScale) {
  const Vector a{1.0, 2.0};
  const Vector b{3.0, 5.0};
  EXPECT_EQ(add(a, b), (Vector{4.0, 7.0}));
  EXPECT_EQ(subtract(b, a), (Vector{2.0, 3.0}));
  EXPECT_EQ(scaled(a, 3.0), (Vector{3.0, 6.0}));
  Vector c = a;
  scale(c, -1.0);
  EXPECT_EQ(c, (Vector{-1.0, -2.0}));
}

TEST(VectorOpsTest, NormalizedHasUnitNorm) {
  const Vector v = normalized({3.0, 0.0, 4.0});
  EXPECT_NEAR(norm(v), 1.0, 1e-12);
  EXPECT_NEAR(v[0], 0.6, 1e-12);
}

TEST(VectorOpsTest, NormalizedRejectsZero) {
  EXPECT_THROW((void)normalized({0.0, 0.0}), std::invalid_argument);
}

TEST(VectorOpsTest, LerpEndpointsAndMidpoint) {
  const Vector a{0.0, 0.0};
  const Vector b{2.0, 4.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vector{1.0, 2.0}));
}

TEST(VectorOpsTest, ZerosHasCorrectShape) {
  const Vector z = zeros(4);
  EXPECT_EQ(z.size(), 4u);
  EXPECT_DOUBLE_EQ(norm(z), 0.0);
}

// --------------------------------------------------------------- matrix.h

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(MatrixTest, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::invalid_argument);
  EXPECT_THROW((void)m.at(0, 2), std::invalid_argument);
}

TEST(MatrixTest, FromRowsRejectsRagged) {
  EXPECT_THROW((void)Matrix::from_rows({{1.0, 2.0}, {3.0}}),
               std::invalid_argument);
}

TEST(MatrixTest, RowViewAndCopy) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.row_copy(1), (Vector{3.0, 4.0}));
  EXPECT_EQ(m.col_copy(0), (Vector{1.0, 3.0}));
  EXPECT_DOUBLE_EQ(m.row(0)[1], 2.0);
}

TEST(MatrixTest, SetAndAppendRow) {
  Matrix m(1, 2);
  m.set_row(0, {5.0, 6.0});
  m.append_row({7.0, 8.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.row_copy(1), (Vector{7.0, 8.0}));
  EXPECT_THROW(m.append_row({1.0}), std::invalid_argument);
}

TEST(MatrixTest, AppendToEmptySetsWidth) {
  Matrix m;
  m.append_row({1.0, 2.0, 3.0});
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(MatrixTest, MatvecAndTransposedMatvec) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(m.matvec({1.0, 1.0}), (Vector{3.0, 7.0, 11.0}));
  EXPECT_EQ(m.matvec_transposed({1.0, 1.0, 1.0}), (Vector{9.0, 12.0}));
}

TEST(MatrixTest, TransposeInvolution) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const Matrix mt = m.transposed();
  EXPECT_EQ(mt.rows(), 3u);
  EXPECT_EQ(mt.cols(), 2u);
  EXPECT_DOUBLE_EQ(mt(2, 1), 6.0);
  const Matrix mtt = mt.transposed();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_DOUBLE_EQ(mtt(r, c), m(r, c));
    }
  }
}

TEST(MatrixTest, ColumnMeans) {
  const Matrix m = Matrix::from_rows({{1.0, 10.0}, {3.0, 20.0}});
  EXPECT_EQ(m.column_means(), (Vector{2.0, 15.0}));
}

TEST(MatrixTest, CovarianceOfKnownData) {
  // Two perfectly correlated columns.
  const Matrix m =
      Matrix::from_rows({{0.0, 0.0}, {1.0, 2.0}, {2.0, 4.0}});
  const Matrix cov = m.covariance();
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 4.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(cov(1, 0), 2.0, 1e-12);
}

TEST(MatrixTest, SelectRows) {
  const Matrix m = Matrix::from_rows({{1.0}, {2.0}, {3.0}});
  const Matrix s = m.select_rows({2, 0});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 1.0);
  EXPECT_THROW((void)m.select_rows({5}), std::invalid_argument);
}

// ---------------------------------------------------------------- eigen.h

TEST(EigenTest, DominantEigenpairOfDiagonal) {
  Matrix d(3, 3);
  d(0, 0) = 1.0;
  d(1, 1) = 5.0;
  d(2, 2) = 2.0;
  util::Rng rng(1);
  const EigenPair p = power_iteration(d, rng);
  EXPECT_NEAR(p.value, 5.0, 1e-8);
  EXPECT_NEAR(std::abs(p.vector[1]), 1.0, 1e-6);
}

TEST(EigenTest, SymmetricTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m(2, 2);
  m(0, 0) = 2.0;
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  m(1, 1) = 2.0;
  util::Rng rng(2);
  const auto pairs = top_eigenpairs(m, 2, rng);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_NEAR(pairs[0].value, 3.0, 1e-8);
  EXPECT_NEAR(pairs[1].value, 1.0, 1e-6);
}

TEST(EigenTest, EigenvectorsOrthonormal) {
  util::Rng data_rng(3);
  Matrix x(50, 4);
  for (std::size_t r = 0; r < 50; ++r) {
    for (std::size_t c = 0; c < 4; ++c) x(r, c) = data_rng.normal();
  }
  const Matrix cov = x.covariance();
  util::Rng rng(4);
  const auto pairs = top_eigenpairs(cov, 3, rng);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_NEAR(norm(pairs[i].vector), 1.0, 1e-8);
    for (std::size_t j = i + 1; j < pairs.size(); ++j) {
      EXPECT_NEAR(dot(pairs[i].vector, pairs[j].vector), 0.0, 1e-6);
    }
  }
  // Eigenvalues sorted (deflation removes the largest first).
  for (std::size_t i = 0; i + 1 < pairs.size(); ++i) {
    EXPECT_GE(pairs[i].value, pairs[i + 1].value - 1e-9);
  }
}

TEST(EigenTest, ProjectionOntoBasisIsIdempotent) {
  Matrix m(2, 2);
  m(0, 0) = 4.0;
  m(1, 1) = 1.0;
  util::Rng rng(5);
  const auto basis = top_eigenpairs(m, 1, rng);
  const Vector x{3.0, 7.0};
  const Vector p1 = project_onto_basis(x, basis);
  const Vector p2 = project_onto_basis(p1, basis);
  EXPECT_NEAR(distance(p1, p2), 0.0, 1e-10);
  // The top eigenvector of this diagonal matrix is e0 (up to the power
  // iteration's direction tolerance).
  EXPECT_NEAR(p1[0], 3.0, 1e-3);
  EXPECT_NEAR(p1[1], 0.0, 1e-3);
}

TEST(EigenTest, RejectsNonSquare) {
  Matrix m(2, 3);
  util::Rng rng(6);
  EXPECT_THROW((void)power_iteration(m, rng), std::invalid_argument);
  EXPECT_THROW((void)top_eigenpairs(m, 1, rng), std::invalid_argument);
}

TEST(EigenTest, RankDeficientMatrixYieldsZeroEigenvalue) {
  Matrix z(3, 3);  // zero matrix
  util::Rng rng(7);
  const EigenPair p = power_iteration(z, rng);
  EXPECT_NEAR(p.value, 0.0, 1e-12);
}

}  // namespace
}  // namespace pg::la
