// Unit and property tests for pg::ml -- linear models, the hinge-loss SVM
// trainer, logistic regression, metrics, and cross validation.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "ml/linear_model.h"
#include "ml/logreg.h"
#include "ml/metrics.h"
#include "ml/svm.h"
#include "ml/validation.h"

namespace pg::ml {
namespace {

data::Dataset separable_blobs(std::size_t n, std::uint64_t seed,
                              double sep = 6.0) {
  util::Rng rng(seed);
  return data::make_gaussian_blobs(n, 4, sep, rng);
}

// --------------------------------------------------------- linear_model.h

TEST(LinearModelTest, DecisionFunctionAndPredict) {
  const LinearModel m({1.0, -2.0}, 0.5);
  EXPECT_DOUBLE_EQ(m.decision_function({2.0, 1.0}), 0.5);
  EXPECT_EQ(m.predict({2.0, 1.0}), 1);
  EXPECT_EQ(m.predict({0.0, 1.0}), -1);
}

TEST(LinearModelTest, MarginSign) {
  const LinearModel m({1.0, 0.0}, 0.0);
  EXPECT_DOUBLE_EQ(m.margin({2.0, 0.0}, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.margin({2.0, 0.0}, -1), -2.0);
}

TEST(LinearModelTest, DistanceToBoundaryGeometric) {
  const LinearModel m({3.0, 4.0}, 0.0);  // ||w|| = 5
  EXPECT_DOUBLE_EQ(m.distance_to_boundary({3.0, 4.0}), 5.0);
}

TEST(LinearModelTest, RejectsEmptyWeights) {
  EXPECT_THROW(LinearModel({}, 0.0), std::invalid_argument);
}

TEST(LinearModelTest, AccuracyOnKnownData) {
  data::Dataset d;
  d.append({1.0}, 1);
  d.append({-1.0}, -1);
  d.append({2.0}, -1);  // misclassified by w=1,b=0
  const LinearModel m({1.0}, 0.0);
  EXPECT_NEAR(m.accuracy(d), 2.0 / 3.0, 1e-12);
}

// ------------------------------------------------------------------ svm.h

TEST(SvmTest, LearnsSeparableProblem) {
  const data::Dataset d = separable_blobs(400, 1);
  SvmConfig cfg;
  cfg.epochs = 50;
  util::Rng rng(2);
  const LinearModel m = SvmTrainer(cfg).train(d, rng);
  EXPECT_GT(m.accuracy(d), 0.97);
}

TEST(SvmTest, WeightsPointAcrossClasses) {
  const data::Dataset d = separable_blobs(400, 3);
  SvmConfig cfg;
  cfg.epochs = 50;
  util::Rng rng(4);
  const LinearModel m = SvmTrainer(cfg).train(d, rng);
  // Class +1 is at +x on axis 0, so w[0] must be positive.
  EXPECT_GT(m.weights()[0], 0.0);
}

TEST(SvmTest, DeterministicGivenSeed) {
  const data::Dataset d = separable_blobs(200, 5);
  SvmConfig cfg;
  cfg.epochs = 20;
  util::Rng r1(7);
  util::Rng r2(7);
  const LinearModel a = SvmTrainer(cfg).train(d, r1);
  const LinearModel b = SvmTrainer(cfg).train(d, r2);
  for (std::size_t i = 0; i < a.dim(); ++i) {
    EXPECT_DOUBLE_EQ(a.weights()[i], b.weights()[i]);
  }
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST(SvmTest, MoreEpochsDoNotHurtObjective) {
  const data::Dataset d = separable_blobs(300, 9, 2.0);
  util::Rng r1(11);
  util::Rng r2(11);
  SvmConfig few;
  few.epochs = 3;
  SvmConfig many;
  many.epochs = 100;
  const double obj_few =
      hinge_objective(SvmTrainer(few).train(d, r1), d, few.lambda);
  const double obj_many =
      hinge_objective(SvmTrainer(many).train(d, r2), d, many.lambda);
  EXPECT_LE(obj_many, obj_few + 0.05);
}

TEST(SvmTest, HingeLossZeroForLargeMargins) {
  data::Dataset d;
  d.append({10.0}, 1);
  d.append({-10.0}, -1);
  const LinearModel m({1.0}, 0.0);
  EXPECT_DOUBLE_EQ(hinge_loss(m, d), 0.0);
}

TEST(SvmTest, HingeLossLinearInViolation) {
  data::Dataset d;
  d.append({0.0}, 1);  // margin 0 -> loss 1
  const LinearModel m({1.0}, 0.0);
  EXPECT_DOUBLE_EQ(hinge_loss(m, d), 1.0);
}

TEST(SvmTest, ObjectiveIncludesRegularizer) {
  data::Dataset d;
  d.append({10.0}, 1);
  const LinearModel m({2.0}, 0.0);
  EXPECT_NEAR(hinge_objective(m, d, 0.5), 0.5 * 0.5 * 4.0, 1e-12);
}

TEST(SvmTest, RejectsBadConfig) {
  EXPECT_THROW(SvmTrainer({.epochs = 0, .lambda = 1e-4, .average = true}),
               std::invalid_argument);
  EXPECT_THROW(SvmTrainer({.epochs = 1, .lambda = 0.0, .average = true}),
               std::invalid_argument);
}

TEST(SvmTest, RejectsEmptyTrainingSet) {
  SvmConfig cfg;
  util::Rng rng(1);
  EXPECT_THROW((void)SvmTrainer(cfg).train(data::Dataset{}, rng),
               std::invalid_argument);
}

TEST(SvmTest, AveragingChangesButDoesNotBreakModel) {
  const data::Dataset d = separable_blobs(200, 13);
  SvmConfig avg;
  avg.epochs = 30;
  avg.average = true;
  SvmConfig last;
  last.epochs = 30;
  last.average = false;
  util::Rng r1(17);
  util::Rng r2(17);
  const LinearModel ma = SvmTrainer(avg).train(d, r1);
  const LinearModel ml = SvmTrainer(last).train(d, r2);
  EXPECT_GT(ma.accuracy(d), 0.95);
  EXPECT_GT(ml.accuracy(d), 0.95);
}

TEST(SvmTest, SingleClassDataDoesNotCrash) {
  data::Dataset d;
  for (int i = 0; i < 20; ++i) {
    d.append({static_cast<double>(i), 1.0}, 1);
  }
  SvmConfig cfg;
  cfg.epochs = 5;
  util::Rng rng(19);
  const LinearModel m = SvmTrainer(cfg).train(d, rng);
  EXPECT_EQ(m.accuracy(d), 1.0);  // everything classified +1
}

// --------------------------------------------------------------- logreg.h

TEST(LogRegTest, SigmoidProperties) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(sigmoid(2.0) + sigmoid(-2.0), 1.0, 1e-12);
}

TEST(LogRegTest, LearnsSeparableProblem) {
  const data::Dataset d = separable_blobs(400, 21);
  LogRegConfig cfg;
  cfg.epochs = 30;
  util::Rng rng(22);
  const LinearModel m = LogRegTrainer(cfg).train(d, rng);
  EXPECT_GT(m.accuracy(d), 0.97);
}

TEST(LogRegTest, ObjectiveDecreasesWithTraining) {
  const data::Dataset d = separable_blobs(300, 23, 2.0);
  LogRegConfig cfg;
  cfg.epochs = 40;
  util::Rng rng(24);
  const LinearModel trained = LogRegTrainer(cfg).train(d, rng);
  const LinearModel zero(la::Vector(d.dim(), 0.0), 0.0);
  EXPECT_LT(logistic_objective(trained, d, cfg.lambda),
            logistic_objective(zero, d, cfg.lambda));
}

TEST(LogRegTest, RejectsBadConfig) {
  EXPECT_THROW(LogRegTrainer({.epochs = 0}), std::invalid_argument);
  EXPECT_THROW(LogRegTrainer({.epochs = 1, .lambda = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      LogRegTrainer({.epochs = 1, .lambda = 0.0, .learning_rate = 0.0}),
      std::invalid_argument);
}

// --------------------------------------------------------------- metrics.h

TEST(MetricsTest, ConfusionCountsAndDerived) {
  data::Dataset d;
  d.append({1.0}, 1);    // predicted +1: TP
  d.append({-1.0}, 1);   // predicted -1: FN
  d.append({-1.0}, -1);  // predicted -1: TN
  d.append({1.0}, -1);   // predicted +1: FP
  const LinearModel m({1.0}, 0.0);
  const ConfusionMatrix cm = evaluate(m, d);
  EXPECT_EQ(cm.true_positive, 1u);
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_EQ(cm.true_negative, 1u);
  EXPECT_EQ(cm.false_positive, 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.5);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.5);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.5);
  EXPECT_DOUBLE_EQ(cm.false_positive_rate(), 0.5);
}

TEST(MetricsTest, DegenerateDenominatorsReturnZero) {
  ConfusionMatrix cm;
  cm.true_negative = 5;
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(MetricsTest, AccuracyHelperMatchesModelAccuracy) {
  const data::Dataset d = separable_blobs(100, 31);
  const LinearModel m({1.0, 0.0, 0.0, 0.0}, 0.0);
  EXPECT_DOUBLE_EQ(accuracy(m, d), m.accuracy(d));
}

// ------------------------------------------------------------ validation.h

TEST(ValidationTest, KfoldPartitionsEverything) {
  util::Rng rng(1);
  const auto folds = kfold_indices(10, 3, rng);
  ASSERT_EQ(folds.size(), 3u);
  std::vector<std::size_t> all;
  for (const auto& f : folds) all.insert(all.end(), f.begin(), f.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(all[i], i);
}

TEST(ValidationTest, KfoldRejectsBadK) {
  util::Rng rng(1);
  EXPECT_THROW((void)kfold_indices(10, 1, rng), std::invalid_argument);
  EXPECT_THROW((void)kfold_indices(3, 4, rng), std::invalid_argument);
}

TEST(ValidationTest, CrossValidationHighOnSeparableData) {
  const data::Dataset d = separable_blobs(300, 33);
  util::Rng rng(34);
  const double acc = cross_validated_accuracy(
      d, 5,
      [](const data::Dataset& train, util::Rng& r) {
        SvmConfig cfg;
        cfg.epochs = 20;
        return SvmTrainer(cfg).train(train, r);
      },
      rng);
  EXPECT_GT(acc, 0.95);
}

}  // namespace
}  // namespace pg::ml
