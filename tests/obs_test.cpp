// Tests for the observability layer (src/obs/): metrics registry
// exactness under concurrency, Chrome-trace span emission and per-thread
// nesting, convergence-trace decimation, telemetry exclusion in the
// result differ, and the instrumentation-changes-nothing contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "game/matrix_game.h"
#include "game/solvers.h"
#include "la/matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/cli.h"
#include "scenario/diff.h"
#include "scenario/engine.h"
#include "scenario/result.h"
#include "scenario/spec.h"

namespace pg {
namespace {

using scenario::DiffOptions;
using scenario::JsonValue;
using scenario::parse_json;

// --------------------------------------------------------------- metrics

#ifndef PG_OBS_DISABLED

TEST(MetricsTest, ConcurrentCounterFoldsExactly) {
  obs::Counter& c = obs::counter("test.concurrent_counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  // Sharded relaxed adds must still fold to the exact total: every
  // increment lands in exactly one shard, no lost updates.
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, CounterAddNAndSameNameSameInstance) {
  obs::Counter& a = obs::counter("test.addn");
  obs::Counter& b = obs::counter("test.addn");
  EXPECT_EQ(&a, &b);  // stable address: call-site caching is sound
  a.reset();
  a.add(5);
  b.add(7);
  EXPECT_EQ(a.value(), 12u);
}

TEST(MetricsTest, GaugeRecordsMaximum) {
  obs::Gauge& g = obs::gauge("test.gauge");
  g.reset();
  g.record(3);
  g.record(11);
  g.record(7);
  EXPECT_EQ(g.max(), 11u);
}

TEST(MetricsTest, TimerCountsExactlyAcrossThreads) {
  obs::Timer& timer = obs::timer("test.timer");
  timer.reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&timer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        timer.record_ns(static_cast<std::uint64_t>(t * kPerThread + i + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  const obs::Timer::Stats stats = timer.stats();
  EXPECT_EQ(stats.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.min_ns, 1u);
  EXPECT_EQ(stats.max_ns,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Sum of 1..N.
  const std::uint64_t n = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(stats.total_ns, n * (n + 1) / 2);
}

TEST(MetricsTest, SnapshotIsSortedAndTyped) {
  obs::counter("test.snap_counter").reset();
  obs::counter("test.snap_counter").add(2);
  obs::gauge("test.snap_gauge").record(9);
  obs::timer("test.snap_timer").record_ns(1500000);  // 1.5 ms
  const std::vector<obs::MetricSnapshot> snap = obs::snapshot_metrics();
  ASSERT_FALSE(snap.empty());
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
  bool saw_counter = false;
  bool saw_timer = false;
  for (const auto& m : snap) {
    if (m.name == "test.snap_counter") {
      saw_counter = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kCounter);
      EXPECT_EQ(m.count, 2u);
    }
    if (m.name == "test.snap_timer") {
      saw_timer = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kTimer);
      EXPECT_GE(m.count, 1u);
      EXPECT_GE(m.total_ms, 1.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_timer);
}

// ----------------------------------------------------------------- trace

/// Parse a written trace and return its "X" (complete) events.
std::vector<const JsonValue*> complete_events(const JsonValue& doc) {
  std::vector<const JsonValue*> out;
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr) return out;
  for (const JsonValue& e : events->items) {
    const JsonValue* ph = e.find("ph");
    if (ph != nullptr && ph->text == "X") out.push_back(&e);
  }
  return out;
}

TEST(TraceTest, SpansOutsideActiveWindowAreDropped) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.stop();
  { obs::Span dead("never_recorded", "test"); }
  tracer.start();
  tracer.stop();
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const JsonValue doc = parse_json(out.str());
  for (const JsonValue* e : complete_events(doc)) {
    const JsonValue* name = e->find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_NE(name->text, "never_recorded");
  }
}

TEST(TraceTest, ChromeTraceParsesAndSpansNestPerThread) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.start();
  const auto spin = [] {
    volatile int sink = 0;
    for (int i = 0; i < 20000; ++i) sink = sink + i;
  };
  const auto work = [&spin] {
    obs::Span outer("outer_span", "test");
    spin();
    {
      obs::Span inner("inner_span", "test");
      spin();
    }
    spin();
  };
  std::thread a(work);
  std::thread b(work);
  a.join();
  b.join();
  std::ostringstream out;
  tracer.write_chrome_trace(out);

  // The output must be strict JSON parseable by our own reader -- the
  // same guarantee chrome://tracing / Perfetto rely on.
  const JsonValue doc = parse_json(out.str());
  const auto events = complete_events(doc);

  // Both threads contributed an outer and an inner span.
  int outer_count = 0;
  int inner_count = 0;
  for (const JsonValue* e : events) {
    const std::string& name = e->find("name")->text;
    if (name == "outer_span") ++outer_count;
    if (name == "inner_span") ++inner_count;
  }
  EXPECT_EQ(outer_count, 2);
  EXPECT_EQ(inner_count, 2);

  // Per thread id, inner must be contained in outer (proper nesting)
  // and tagged one level deeper.
  for (const JsonValue* outer : events) {
    if (outer->find("name")->text != "outer_span") continue;
    const double otid = outer->find("tid")->number;
    const double ots = outer->find("ts")->number;
    const double odur = outer->find("dur")->number;
    const double odepth = outer->find("args")->find("depth")->number;
    bool found_inner = false;
    for (const JsonValue* inner : events) {
      if (inner->find("name")->text != "inner_span") continue;
      if (inner->find("tid")->number != otid) continue;
      found_inner = true;
      const double its = inner->find("ts")->number;
      const double idur = inner->find("dur")->number;
      EXPECT_GE(its, ots);
      EXPECT_LE(its + idur, ots + odur + 1e-3);  // fractional-us rounding
      EXPECT_EQ(inner->find("args")->find("depth")->number, odepth + 1);
    }
    EXPECT_TRUE(found_inner);
  }
}

TEST(TraceTest, PerThreadEventCapCountsDrops) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.start();
  for (std::size_t i = 0; i < obs::kMaxEventsPerThread + 100; ++i) {
    obs::Span s("cap_filler", "test");
  }
  tracer.stop();
  EXPECT_GE(tracer.dropped_events(), 100u);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const JsonValue doc = parse_json(out.str());
  const JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  const JsonValue* dropped = other->find("dropped_events");
  ASSERT_NE(dropped, nullptr);
  EXPECT_GE(dropped->number, 100.0);
}

#endif  // PG_OBS_DISABLED

// --------------------------------------------------- convergence trace

TEST(ConvergenceTraceTest, DecimationBoundsMemory) {
  game::ConvergenceTrace trace;
  constexpr std::size_t kIterations = 300000;
  for (std::size_t t = 0; t < kIterations; ++t) {
    if (trace.wants(t)) trace.push(t, 1.0 / static_cast<double>(t + 1));
  }
  // Bounded: never exceeds the cap no matter how many iterations ran.
  EXPECT_LE(trace.samples.size(), trace.max_samples);
  EXPECT_GE(trace.samples.size(), trace.max_samples / 4);
  // Coverage: first sample at iteration 0, last within one (doubled)
  // stride of the end, iterations strictly increasing throughout.
  ASSERT_FALSE(trace.samples.empty());
  EXPECT_EQ(trace.samples.front().iteration, 0u);
  EXPECT_GE(trace.samples.back().iteration, kIterations - 2 * trace.stride);
  for (std::size_t i = 1; i < trace.samples.size(); ++i) {
    EXPECT_GT(trace.samples[i].iteration, trace.samples[i - 1].iteration);
  }
}

TEST(ConvergenceTraceTest, SolverRecordsShrinkingGap) {
  la::Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = -1;
  m(1, 0) = -1;
  m(1, 1) = 1;
  const game::MatrixGame pennies((la::Matrix(m)));

  game::ConvergenceTrace trace;
  game::IterativeConfig config;
  config.iterations = 4000;
  config.trace = &trace;
  const game::Equilibrium eq = game::solve_fictitious_play(pennies, config);
  EXPECT_EQ(eq.iterations, 4000u);
  ASSERT_GE(trace.samples.size(), 8u);
  // FP on matching pennies converges; the recorded duality gap must
  // shrink from the early iterates to the late ones.
  const double early = std::abs(trace.samples[1].gap);
  const double late = std::abs(trace.samples.back().gap);
  EXPECT_LT(late, early);
  EXPECT_LT(late, 0.1);
}

TEST(ConvergenceTraceTest, NullTraceIsIdenticalSolve) {
  la::Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = -1;
  m(1, 0) = -1;
  m(1, 1) = 1;
  const game::MatrixGame pennies((la::Matrix(m)));
  game::IterativeConfig with_trace;
  with_trace.iterations = 1000;
  game::ConvergenceTrace trace;
  with_trace.trace = &trace;
  game::IterativeConfig without;
  without.iterations = 1000;
  const game::Equilibrium a = game::solve_fictitious_play(pennies, with_trace);
  const game::Equilibrium b = game::solve_fictitious_play(pennies, without);
  ASSERT_EQ(a.row_strategy.size(), b.row_strategy.size());
  for (std::size_t i = 0; i < a.row_strategy.size(); ++i) {
    EXPECT_EQ(a.row_strategy[i], b.row_strategy[i]);
  }
  EXPECT_EQ(a.value, b.value);
}

// ------------------------------------------------------- differ behavior

const char* kPlainRun = R"({
  "schema_version": 1, "scenario": "t", "kind": "k",
  "metrics": {"accuracy": 0.5},
  "tables": [{"name": "curve", "columns": ["x", "y"], "rows": [[1, 2]]}]
})";

const char* kTelemetryRun = R"({
  "schema_version": 1, "scenario": "t", "kind": "k",
  "metrics": {"accuracy": 0.5, "obs.pool.tasks_stolen": 17},
  "tables": [
    {"name": "curve", "columns": ["x", "y"], "rows": [[1, 2]]},
    {"name": "telemetry_counters", "columns": ["metric", "value"],
     "rows": [["obs.cache.hits", 40]]},
    {"name": "telemetry_timers",
     "columns": ["metric", "count", "total_ms", "mean_ms", "min_ms", "max_ms"],
     "rows": [["obs.engine.point_wall", 3, 9.0, 3.0, 2.0, 4.0]]}
  ]
})";

TEST(DiffTelemetryTest, TelemetryExcludedByDefault) {
  const JsonValue plain = parse_json(kPlainRun);
  const JsonValue telemetry = parse_json(kTelemetryRun);
  // An instrumented candidate against a plain baseline is clean: the
  // telemetry tables and obs.* metrics must not surface as EXTRA.
  const scenario::ResultDiff diff = diff_results(plain, telemetry, {});
  EXPECT_TRUE(diff.clean());
  // And symmetrically (instrumented baseline, plain candidate).
  EXPECT_TRUE(diff_results(telemetry, plain, {}).clean());
}

TEST(DiffTelemetryTest, WithTelemetryComparesEverything) {
  const JsonValue plain = parse_json(kPlainRun);
  const JsonValue telemetry = parse_json(kTelemetryRun);
  DiffOptions options;
  options.ignore_telemetry = false;
  const scenario::ResultDiff diff = diff_results(plain, telemetry, options);
  EXPECT_FALSE(diff.clean());
  // 1 extra metric + 2 extra tables.
  EXPECT_EQ(diff.count(scenario::DiffKind::kExtra), 3u);
}

TEST(DiffTelemetryTest, SweepMetricsRowsWithObsNamesAreSkipped) {
  const char* base = R"({
    "scenario": "t", "kind": "k", "sweep_axes": ["eps"],
    "metrics": {},
    "tables": [{"name": "sweep_metrics",
                "columns": ["eps", "metric", "value"],
                "rows": [[0.1, "accuracy", 0.9], [0.1, "obs.cache.hits", 5]]}]
  })";
  const char* cand = R"({
    "scenario": "t", "kind": "k", "sweep_axes": ["eps"],
    "metrics": {},
    "tables": [{"name": "sweep_metrics",
                "columns": ["eps", "metric", "value"],
                "rows": [[0.1, "accuracy", 0.9], [0.1, "obs.cache.hits", 99]]}]
  })";
  EXPECT_TRUE(diff_results(parse_json(base), parse_json(cand), {}).clean());
  DiffOptions strict;
  strict.ignore_telemetry = false;
  EXPECT_FALSE(diff_results(parse_json(base), parse_json(cand), strict)
                   .clean());
}

// ------------------------------------------- engine + CLI integration

scenario::ScenarioSpec tiny_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "tiny_obs";
  spec.kind = "pure_sweep";
  spec.seed = 7;
  spec.instances = 300;
  spec.epochs = 20;
  spec.real_corpus = false;
  spec.sweep_steps = 3;
  spec.replications = 1;
  spec.draws = 1;
  spec.support_min = 2;
  spec.support_max = 2;
  spec.threads = 1;
  return spec;
}

std::string result_json(const scenario::ScenarioResult& result) {
  std::ostringstream out;
  scenario::write_json(result, out);
  return out.str();
}

TEST(ObsEngineTest, InstrumentationDoesNotChangeResults) {
  const scenario::ScenarioResult plain = scenario::run_scenario(tiny_spec());

  scenario::ScenarioSpec instrumented = tiny_spec();
  instrumented.metrics = true;
  instrumented.telemetry = true;
  const std::string trace_path = "obs_test_trace.tmp.json";
  instrumented.trace = trace_path;
  const scenario::ScenarioResult traced =
      scenario::run_scenario(instrumented);

  // Tolerance 0: metrics + tracing on must be bit-identical to off on
  // everything the differ gates (telemetry tables are excluded by name).
  const scenario::ResultDiff diff = diff_results(
      parse_json(result_json(plain)), parse_json(result_json(traced)), {});
  EXPECT_TRUE(diff.clean()) << result_json(traced);

#ifndef PG_OBS_DISABLED
  // metrics=true appended the registry dump tables.
  bool saw_counters = false;
  for (const auto& table : traced.tables) {
    if (table.name == "telemetry_counters") saw_counters = true;
  }
  EXPECT_TRUE(saw_counters);

  // The trace file is valid JSON with the scenario-level span.
  std::ifstream in(trace_path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::ostringstream text;
  text << in.rdbuf();
  const JsonValue doc = parse_json(text.str());
  bool saw_scenario_span = false;
  for (const JsonValue* e : complete_events(doc)) {
    if (e->find("name")->text == "scenario:tiny_obs") saw_scenario_span = true;
  }
  EXPECT_TRUE(saw_scenario_span);
#endif
  std::remove(trace_path.c_str());
}

TEST(ObsCliTest, ParsesTraceAndMetricsFlags) {
  const scenario::CliOptions options = scenario::parse_cli(
      {"--scenario", "prop1", "--trace", "t.json", "--metrics-out", "m.json"});
  EXPECT_EQ(options.metrics_out, "m.json");
  bool saw_trace = false;
  bool saw_metrics = false;
  for (const auto& [key, value] : options.overrides) {
    if (key == "trace" && value == "t.json") saw_trace = true;
    if (key == "metrics" && value == "true") saw_metrics = true;
  }
  EXPECT_TRUE(saw_trace);
  EXPECT_TRUE(saw_metrics);
  EXPECT_TRUE(
      scenario::parse_cli({"--compare", "a.json", "b.json",
                           "--with-telemetry"})
          .with_telemetry);
}

TEST(ObsCliTest, UnwritableOutputPathsFailBeforeTheRun) {
  const auto expect_fast_failure = [](const scenario::CliOptions& options,
                                      const char* needle) {
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(scenario::run_cli(options, out, err), 1);
    EXPECT_NE(err.str().find("cannot write"), std::string::npos) << err.str();
    EXPECT_NE(err.str().find(needle), std::string::npos) << err.str();
    // One-line error, no partial result dumped to stdout.
    EXPECT_EQ(out.str(), "");
  };
  {
    scenario::CliOptions options;
    options.scenario = "prop1";
    options.out_file = "/nonexistent_pg_dir/out.json";
    expect_fast_failure(options, "output file");
  }
  {
    scenario::CliOptions options;
    options.scenario = "prop1";
    options.overrides.emplace_back("trace", "/nonexistent_pg_dir/t.json");
    expect_fast_failure(options, "trace file");
  }
  {
    scenario::CliOptions options;
    options.scenario = "prop1";
    options.metrics_out = "/nonexistent_pg_dir/m.json";
    expect_fast_failure(options, "metrics file");
  }
}

}  // namespace
}  // namespace pg
