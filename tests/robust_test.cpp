// Fault-tolerance suite: the deterministic fault-injection grammar, the
// crash-safe atomic file writer, disk-cache quarantine, the --shard-exec
// retry orchestrator (a worker SIGKILLed mid-write must not change the
// merged numbers), --merge's machine-readable missing-shards contract,
// and serve-layer resilience (ping health checks, client retry across an
// injected response-write fault).
//
// Every test arms rules through robust::configure and disarms in a
// guard's destructor, so the suite leaves the process fault-free for
// whoever runs next in the binary.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "robust/atomic_file.h"
#include "robust/faultpoint.h"
#include "runtime/payoff_disk_cache.h"
#include "runtime/payoff_evaluator.h"
#include "scenario/cli.h"
#include "scenario/diff.h"
#include "scenario/engine.h"
#include "scenario/result.h"
#include "scenario/spec.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace pg {
namespace {

/// Arm a fault table for one test; disarm on scope exit no matter how
/// the test ends.
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) { robust::configure(spec); }
  ~FaultGuard() { robust::reset(); }
  FaultGuard(const FaultGuard&) = delete;
  FaultGuard& operator=(const FaultGuard&) = delete;
};

std::string fresh_dir(const std::string& stem) {
  std::mt19937_64 rng(std::random_device{}());
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       (stem + "_" + std::to_string(rng())))
          .string();
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(static_cast<bool>(out)) << "cannot write " << path;
  out << content;
}

// ------------------------------------------------------------- grammar

TEST(FaultPointTest, IdleIsDisarmedAndFree) {
  robust::reset();
  EXPECT_FALSE(robust::armed());
  const robust::FaultHit hit = robust::faultpoint("anything", 7);
  EXPECT_FALSE(hit.short_write);
}

TEST(FaultPointTest, ThrowActionFiresEveryHit) {
  const FaultGuard guard("t.always:throw");
  EXPECT_TRUE(robust::armed());
  EXPECT_THROW(robust::faultpoint("t.always"), robust::InjectedFault);
  EXPECT_THROW(robust::faultpoint("t.always"), robust::InjectedFault);
  // Other sites stay untouched.
  EXPECT_NO_THROW(robust::faultpoint("t.other"));
}

TEST(FaultPointTest, NthHitFiresExactlyOnce) {
  const FaultGuard guard("t.nth:throw@3");
  EXPECT_NO_THROW(robust::faultpoint("t.nth"));
  EXPECT_NO_THROW(robust::faultpoint("t.nth"));
  EXPECT_THROW(robust::faultpoint("t.nth"), robust::InjectedFault);
  EXPECT_NO_THROW(robust::faultpoint("t.nth"));
}

TEST(FaultPointTest, FromNthFiresForever) {
  const FaultGuard guard("t.from:throw@2+");
  EXPECT_NO_THROW(robust::faultpoint("t.from"));
  EXPECT_THROW(robust::faultpoint("t.from"), robust::InjectedFault);
  EXPECT_THROW(robust::faultpoint("t.from"), robust::InjectedFault);
}

TEST(FaultPointTest, ArgSelectorScopesTheRule) {
  const FaultGuard guard("t.arg[2]:throw");
  EXPECT_NO_THROW(robust::faultpoint("t.arg", 0));
  EXPECT_NO_THROW(robust::faultpoint("t.arg", 1));
  EXPECT_THROW(robust::faultpoint("t.arg", 2), robust::InjectedFault);
}

TEST(FaultPointTest, AttemptTriggerGatesOnRetryNumber) {
  const FaultGuard guard("t.attempt:throw@a0");
  robust::set_attempt(0);
  EXPECT_THROW(robust::faultpoint("t.attempt"), robust::InjectedFault);
  robust::set_attempt(1);  // the relaunch: same rule, no longer armed
  EXPECT_NO_THROW(robust::faultpoint("t.attempt"));
  robust::set_attempt(0);
}

TEST(FaultPointTest, ProbabilityIsSeededAndDeterministic) {
  const auto pattern = [] {
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool f = false;
      try {
        robust::faultpoint("t.prob");
      } catch (const robust::InjectedFault&) {
        f = true;
      }
      fired.push_back(f);
    }
    return fired;
  };
  robust::configure("t.prob:throw@p0.5/1234");
  const std::vector<bool> first = pattern();
  robust::configure("t.prob:throw@p0.5/1234");  // fresh hit counter
  const std::vector<bool> second = pattern();
  robust::reset();
  EXPECT_EQ(first, second);
  const std::size_t fires =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, first.size());

  // p1 always fires; p0 never does.
  {
    const FaultGuard guard("t.p1:throw@p1");
    EXPECT_THROW(robust::faultpoint("t.p1"), robust::InjectedFault);
  }
  {
    const FaultGuard guard("t.p0:throw@p0");
    for (int i = 0; i < 16; ++i) EXPECT_NO_THROW(robust::faultpoint("t.p0"));
  }
}

TEST(FaultPointTest, MalformedEntriesAreRejected) {
  robust::reset();
  EXPECT_THROW(robust::configure("noaction"), std::invalid_argument);
  EXPECT_THROW(robust::configure("x:frobnicate"), std::invalid_argument);
  EXPECT_THROW(robust::configure("x:throw@p2"), std::invalid_argument);
  EXPECT_THROW(robust::configure("x:throw@0"), std::invalid_argument);
  EXPECT_THROW(robust::configure("x[a]:throw"), std::invalid_argument);
  EXPECT_THROW(robust::configure("x:delay=abc"), std::invalid_argument);
  // A failed configure must not leave the process armed.
  EXPECT_FALSE(robust::armed());
}

// --------------------------------------------------------- atomic_file

TEST(AtomicFileTest, WritesAndOverwrites) {
  const std::string dir = fresh_dir("pg_robust_atomic");
  const std::string path = dir + "/artifact.json";
  robust::atomic_write_file(path, "first");
  EXPECT_EQ(read_file(path), "first");
  robust::atomic_write_file(path, "second, longer content");
  EXPECT_EQ(read_file(path), "second, longer content");
  // No temp droppings on the happy path.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
  std::filesystem::remove_all(dir);
}

TEST(AtomicFileTest, InjectedShortWriteTearsTheFinalFile) {
  const std::string dir = fresh_dir("pg_robust_torn");
  const std::string path = dir + "/artifact.json";
  const FaultGuard guard("torn.site:short-write");
  robust::atomic_write_file(path, "0123456789", "torn.site");
  // Truncated to half and renamed anyway -- the simulated legacy torn
  // write loaders must survive.
  EXPECT_EQ(read_file(path), "01234");
  std::filesystem::remove_all(dir);
}

TEST(AtomicFileTest, CrashLeavesTheFinalPathAbsentNeverTorn) {
  const std::string dir = fresh_dir("pg_robust_crash");
  const std::string path = dir + "/artifact.json";
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    robust::configure("crash.site:crash");
    try {
      robust::atomic_write_file(path, "doomed content", "crash.site");
    } catch (...) {
    }
    std::_Exit(0);  // unreachable: the fault point SIGKILLs first
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  // The crash hit between write and rename: the final path never
  // existed, so a reader sees "no artifact", not garbage.
  EXPECT_FALSE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------- cache quarantine

TEST(DiskCacheQuarantineTest, CorruptShardIsQuarantinedOnLoad) {
  const std::string dir = fresh_dir("pg_robust_quarantine");
  const runtime::DiskPayoffCache cache(dir);
  runtime::PayoffCache mem;
  mem.preload({{1, 0.5}, {2, 0.25}, {3, 1.5}});
  ASSERT_EQ(cache.save(7, mem), 3u);

  // Tear the shard the way a crashed legacy writer would.
  const std::string path = cache.shard_path(7);
  const std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() / 2));

#ifndef PG_OBS_DISABLED
  const std::uint64_t before = obs::counter("obs.cache.quarantined").value();
#endif
  runtime::PayoffCache fresh;
  EXPECT_EQ(cache.load(7, fresh), 0u);  // degrades cold, never throws
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
#ifndef PG_OBS_DISABLED
  EXPECT_EQ(obs::counter("obs.cache.quarantined").value(), before + 1);
#endif

  // The poisoned bytes are out of the way: the next save/load round-trip
  // is healthy again.
  ASSERT_EQ(cache.save(7, mem), 3u);
  runtime::PayoffCache again;
  EXPECT_EQ(cache.load(7, again), 3u);
  std::filesystem::remove_all(dir);
}

TEST(DiskCacheQuarantineTest, InjectedShortWriteStoreDegradesNextRunCold) {
  const std::string dir = fresh_dir("pg_robust_shortstore");
  const runtime::DiskPayoffCache cache(dir);
  runtime::PayoffCache mem;
  mem.preload({{10, 1.0}, {11, 2.0}, {12, 3.0}, {13, 4.0}});
  {
    const FaultGuard guard("cache.store:short-write");
    ASSERT_EQ(cache.save(9, mem), 4u);  // store "succeeds" -- torn bytes
  }
  runtime::PayoffCache fresh;
  EXPECT_EQ(cache.load(9, fresh), 0u);
  EXPECT_TRUE(std::filesystem::exists(cache.shard_path(9) + ".corrupt"));
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------- shard-exec chaos

/// A small but real two-axis sweep (4 plan points), the chaos twin of
/// tests/golden/sweep_grid.spec.
std::string chaos_spec_text() {
  return
      "name = chaos_grid\n"
      "kind = pure_sweep\n"
      "description = chaos harness grid\n"
      "seed = 9\n"
      "instances = 140\n"
      "epochs = 8\n"
      "train_fraction = 0.7\n"
      "poison_fraction = 0.2\n"
      "class_separation = 1\n"
      "real_corpus = false\n"
      "sweep_steps = 2\n"
      "replications = 1\n"
      "sweep = epochs=6..10:2; seed=1,2\n"
      "attacks = boundary,label_flip\n"
      "defenses = distance,knn\n"
      "threads = 1\n"
      "use_cache = true\n";
}

TEST(ShardExecChaosTest, WorkerKilledMidWriteIsRetriedAndMergeIsExact) {
  const std::string dir = fresh_dir("pg_robust_shardexec");
  const std::string spec_path = dir + "/chaos.spec";
  write_file(spec_path, chaos_spec_text());

  // Kill worker 1 inside its partial's atomic write, FIRST launch only
  // (@a0): the retry -- stamped attempt 1 -- runs clean. The crash lands
  // between write and rename, so the parent sees a missing partial plus
  // a SIGKILLed child.
  const FaultGuard guard("artifact.partial[1]:crash@a0");

  scenario::CliOptions sharded;
  sharded.spec_file = spec_path;
  sharded.shard_exec = 3;
  sharded.shard_retries = 2;
  sharded.out_format = "json";
  sharded.out_file = dir + "/merged.json";
  sharded.overrides.emplace_back("cache_dir", dir + "/cache");
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(scenario::run_cli(sharded, out, err), 0) << err.str();
  EXPECT_NE(err.str().find("killed by signal 9"), std::string::npos)
      << err.str();
  EXPECT_NE(err.str().find("retrying 1 shard(s)"), std::string::npos)
      << err.str();

  // Tolerance 0 against a single-process run of the same spec: the
  // injected crash and the retry must be invisible in the numbers.
  scenario::CliOptions single;
  single.spec_file = spec_path;
  single.out_format = "json";
  single.out_file = dir + "/single.json";
  single.overrides.emplace_back("cache_dir", dir + "/cache_single");
  std::ostringstream out2;
  std::ostringstream err2;
  ASSERT_EQ(scenario::run_cli(single, out2, err2), 0) << err2.str();

  scenario::DiffOptions exact;
  exact.tolerance = 0.0;
  const scenario::ResultDiff diff = scenario::diff_results(
      scenario::parse_json(read_file(single.out_file)),
      scenario::parse_json(read_file(sharded.out_file)), exact);
  std::ostringstream report;
  scenario::write_diff_report(diff, exact, report);
  EXPECT_TRUE(diff.clean()) << report.str();
  std::filesystem::remove_all(dir);
}

TEST(ShardExecChaosTest, ExhaustedRetriesFailPermanentlyWithCleanError) {
  const std::string dir = fresh_dir("pg_robust_permanent");
  const std::string spec_path = dir + "/chaos.spec";
  write_file(spec_path, chaos_spec_text());

  // No attempt gate: shard 2's startup crashes on EVERY launch.
  const FaultGuard guard("shard.worker.start[2]:crash");
  scenario::CliOptions sharded;
  sharded.spec_file = spec_path;
  sharded.shard_exec = 3;
  sharded.shard_retries = 1;
  sharded.out_format = "json";
  sharded.out_file = dir + "/merged.json";
  sharded.overrides.emplace_back("cache_dir", dir + "/cache");
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(scenario::run_cli(sharded, out, err), 1);
  EXPECT_NE(err.str().find("shard(s) 2 failed permanently after 1 retry"),
            std::string::npos)
      << err.str();
  EXPECT_FALSE(std::filesystem::exists(sharded.out_file));
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------- merge contract

TEST(MergeChaosTest, MissingShardsAreMachineReadableWithExitFour) {
  const std::string dir = fresh_dir("pg_robust_merge");
  const scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::parse(chaos_spec_text());
  std::vector<std::string> paths;
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    const scenario::ScenarioResult part =
        scenario::run_scenario_shard(spec, {i, 3});
    std::ostringstream json;
    scenario::write_json(part, json);
    paths.push_back(dir + "/part-" + std::to_string(i) + ".json");
    write_file(paths.back(), json.str());
  }
  scenario::CliOptions merge;
  merge.merge = true;
  merge.merge_inputs = paths;  // shard 1 absent
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(scenario::run_cli(merge, out, err), scenario::kExitMissingShards);
  EXPECT_NE(out.str().find("missing_shards=1\n"), std::string::npos)
      << out.str();
  EXPECT_NE(err.str().find("missing shard(s): 1"), std::string::npos)
      << err.str();

  // A torn partial names its likely cause instead of a bare parse error.
  const std::string partial_bytes = read_file(paths[0]);
  write_file(paths[0], partial_bytes.substr(0, partial_bytes.size() / 2));
  std::ostringstream out2;
  std::ostringstream err2;
  EXPECT_EQ(scenario::run_cli(merge, out2, err2), 1);
  EXPECT_NE(err2.str().find("truncated or torn write"), std::string::npos)
      << err2.str();
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------- serve resilience

class ServeChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fresh_dir("pg_robust_serve");
    options_.socket_path = dir_ + "/serve.sock";
    options_.threads = 1;
    options_.request_workers = 1;
    options_.cache_dir = dir_ + "/cache";
  }

  void Start() {
    server_ = std::make_unique<serve::ScenarioServer>(options_);
    server_->start();
  }

  void TearDown() override {
    robust::reset();  // BEFORE stop(): drain writes pass fault points too
    if (server_ != nullptr) server_->stop();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string dir_;
  serve::ServeOptions options_;
  std::unique_ptr<serve::ScenarioServer> server_;
};

TEST_F(ServeChaosTest, PingAnswersPongWithoutTouchingTheQueue) {
  Start();
  serve::Client client =
      serve::Client::connect_retry(options_.socket_path, 15000);
  const serve::Client::Response response = client.ping();
  EXPECT_TRUE(response.ok()) << response.body;
  EXPECT_NE(response.body.find("\"pong\": true"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"minor\": " +
                               std::to_string(serve::kProtocolMinor)),
            std::string::npos)
      << response.body;
  // Pings are health checks, not served requests.
  EXPECT_EQ(server_->requests_served(), 0u);
}

TEST_F(ServeChaosTest, ClientRetrySurvivesAnInjectedResponseWriteFault) {
  Start();
  // First response write on the server throws (connection drops mid
  // round-trip); the client's second attempt -- a fresh connection --
  // gets through. kMaxHeaderBytes-style transport faults are exactly
  // what request_retry is for; a structured error would NOT retry.
  const FaultGuard guard("serve.write:throw@1");
  serve::Client::RetryPolicy policy;
  policy.attempts = 3;
  policy.backoff_ms = 10;
  const serve::Client::Response response = serve::Client::request_retry(
      options_.socket_path, "name = health\nkind = serve_metrics\n", policy);
  EXPECT_TRUE(response.ok()) << response.body;
}

TEST_F(ServeChaosTest, SingleAttemptPolicyRethrowsTheTransportError) {
  Start();
  const FaultGuard guard("serve.write:throw");
  serve::Client::RetryPolicy policy;
  policy.attempts = 1;
  EXPECT_THROW(serve::Client::request_retry(
                   options_.socket_path,
                   "name = health\nkind = serve_metrics\n", policy),
               std::runtime_error);
}

}  // namespace
}  // namespace pg
