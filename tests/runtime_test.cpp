// Tests for the parallel execution runtime: thread pool and parallel_for
// semantics (coverage, exception propagation, reusability), RNG stream
// decorrelation, payoff-evaluator memoization, and the determinism
// contract -- multi-threaded sweeps and payoff grids must be bit-identical
// to their serial counterparts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/equilibrium.h"
#include "core/game_model.h"
#include "runtime/executor.h"
#include "runtime/parallel_reduce.h"
#include "runtime/payoff_disk_cache.h"
#include "runtime/payoff_evaluator.h"
#include "runtime/persistent_team.h"
#include "runtime/rng_stream.h"
#include "runtime/task_group.h"
#include "runtime/thread_pool.h"
#include "sim/experiment.h"
#include "sim/mixed_eval.h"
#include "sim/pure_sweep.h"

namespace pg {
namespace {

// ---------------------------------------------------------- thread_pool.h

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    runtime::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // Destructor blocks until started tasks finish; busy-wait for the
    // queue to drain so none are discarded at shutdown.
    while (count.load() < 100) std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  runtime::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), runtime::default_thread_count());
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, WorkStealingDrainsHeterogeneousTasks) {
  // Round-robin submission lands cheap and expensive tasks on every
  // deque; stealing must drain all of them even though one worker's own
  // queue holds most of the slow ones.
  std::atomic<int> count{0};
  {
    runtime::ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count, i] {
        if (i % 8 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        count.fetch_add(1);
      });
    }
    while (count.load() < 64) std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  // A running task enqueueing follow-up work must not deadlock or lose
  // tasks (solver call sites do this through nested evaluator calls).
  std::atomic<int> count{0};
  {
    runtime::ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.submit([&pool, &count] {
        pool.submit([&count] { count.fetch_add(1); });
        count.fetch_add(1);
      });
    }
    while (count.load() < 16) std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, TryRunOneHelpsWhileWorkerIsBusy) {
  runtime::ThreadPool pool(1);
  std::atomic<bool> first_started{false};
  std::atomic<bool> release_first{false};
  pool.submit([&] {
    first_started.store(true);
    while (!release_first.load()) std::this_thread::yield();
  });
  while (!first_started.load()) std::this_thread::yield();

  // The only worker is pinned inside the first task, so the second task
  // can only run if the calling thread steals it.
  std::atomic<bool> second_ran{false};
  pool.submit([&] { second_ran.store(true); });
  EXPECT_TRUE(pool.try_run_one());
  EXPECT_TRUE(second_ran.load());
  EXPECT_FALSE(pool.try_run_one()) << "no queued tasks should remain";
  release_first.store(true);
}

// ------------------------------------------------------------- executor.h

TEST(ExecutorTest, SerialCoversEveryIndexInOrder) {
  runtime::SerialExecutor exec;
  std::vector<std::size_t> seen;
  exec.parallel_for(3, 10, 2, [&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{3, 4, 5, 6, 7, 8, 9}));
}

TEST(ExecutorTest, PoolCoversEveryIndexExactlyOnce) {
  runtime::ThreadPoolExecutor exec(4);
  for (std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
    std::vector<std::atomic<int>> hits(37);
    exec.parallel_for(0, 37, grain,
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ExecutorTest, EmptyRangeIsANoop) {
  runtime::ThreadPoolExecutor exec(2);
  bool ran = false;
  exec.parallel_for(5, 5, 1, [&](std::size_t) { ran = true; });
  exec.parallel_for(7, 3, 1, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ExecutorTest, ExceptionPropagatesToCaller) {
  runtime::ThreadPoolExecutor exec(4);
  EXPECT_THROW(
      exec.parallel_for(0, 64, 1,
                        [](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // The executor must stay usable after a failed loop.
  std::atomic<int> count{0};
  exec.parallel_for(0, 16, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(ExecutorTest, SerialExceptionPropagatesToo) {
  runtime::SerialExecutor exec;
  EXPECT_THROW(exec.parallel_for(0, 4, 1,
                                 [](std::size_t i) {
                                   if (i == 2) throw std::invalid_argument("x");
                                 }),
               std::invalid_argument);
}

TEST(ExecutorTest, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  // A loop body calling parallel_for on its OWN executor must not wait on
  // sub-chunks that could only run on already-blocked workers; the nested
  // call runs inline on the worker.
  runtime::ThreadPoolExecutor exec(2);
  std::vector<std::atomic<int>> hits(8 * 8);
  exec.parallel_for(0, 8, 1, [&](std::size_t i) {
    exec.parallel_for(0, 8, 1,
                      [&](std::size_t j) { hits[i * 8 + j].fetch_add(1); });
  });
  for (std::size_t k = 0; k < hits.size(); ++k) {
    EXPECT_EQ(hits[k].load(), 1) << "cell " << k;
  }
}

TEST(ExecutorTest, CallerChunkExceptionPropagates) {
  // The calling thread runs chunk 0 itself (caller participation); a
  // throw there must propagate exactly like a worker-chunk throw, after
  // the remaining chunks finish.
  runtime::ThreadPoolExecutor exec(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      exec.parallel_for(0, 64, 16,
                        [&](std::size_t i) {
                          if (i == 0) throw std::runtime_error("chunk 0");
                          ran.fetch_add(1);
                        }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 48) << "sibling chunks must still run to completion";

  std::atomic<int> count{0};
  exec.parallel_for(0, 16, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16) << "executor must stay usable after a failure";
}

// ------------------------------------------------------ parallel_reduce.h

TEST(ParallelReduceTest, ArgmaxMatchesMaxElementAcrossGrainsAndThreads) {
  // Values with duplicates: the first-index tie-break must survive every
  // chunking and thread count.
  std::vector<double> v = {1.0, 7.0, 3.0, 7.0, -2.0, 7.0, 0.5, 6.0,
                           7.0, 2.0, -1.0, 4.0, 7.0, 3.5, 0.0};
  const auto serial_idx = static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
  runtime::ThreadPoolExecutor pool4(4);
  for (runtime::Executor* exec :
       {static_cast<runtime::Executor*>(nullptr),
        static_cast<runtime::Executor*>(&pool4)}) {
    for (std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                              std::size_t{64}}) {
      EXPECT_EQ(runtime::parallel_argmax(exec, 0, v.size(), grain,
                                         [&](std::size_t i) { return v[i]; }),
                serial_idx)
          << "grain " << grain;
      EXPECT_EQ(runtime::parallel_argmin(exec, 0, v.size(), grain,
                                         [&](std::size_t i) { return v[i]; }),
                4u)
          << "grain " << grain;
    }
  }
}

TEST(ParallelReduceTest, FindFirstMatchesSerialScan) {
  runtime::ThreadPoolExecutor exec(4);
  for (std::size_t hit : {std::size_t{0}, std::size_t{5}, std::size_t{63},
                          std::size_t{64}}) {  // 64 == end: no hit
    for (std::size_t grain : {std::size_t{1}, std::size_t{5},
                              std::size_t{16}}) {
      const std::size_t found = runtime::parallel_find_first(
          &exec, 0, 64, grain, [&](std::size_t i) { return i >= hit; });
      EXPECT_EQ(found, hit) << "hit " << hit << " grain " << grain;
    }
  }
  EXPECT_EQ(runtime::parallel_find_first(&exec, 0, 64, 8,
                                         [](std::size_t) { return false; }),
            64u);
}

TEST(ParallelReduceTest, ChunkedReduceExceptionPropagates) {
  runtime::ThreadPoolExecutor exec(4);
  EXPECT_THROW(
      (void)runtime::chunked_reduce<double>(
          &exec, 0, 100, 10,
          [](std::size_t lo, std::size_t) -> double {
            if (lo == 50) throw std::runtime_error("map failure");
            return 1.0;
          },
          [](double a, double b) { return a + b; }),
      std::runtime_error);
}

TEST(ExecutorTest, NullExecutorResolvesToSerial) {
  EXPECT_EQ(&runtime::executor_or_serial(nullptr),
            &runtime::serial_executor());
  runtime::SerialExecutor mine;
  EXPECT_EQ(&runtime::executor_or_serial(&mine), &mine);
}

// ----------------------------------------------------------- rng_stream.h

TEST(RngStreamTest, DerivedSeedsAreUniqueAcrossIndices) {
  const runtime::RngStreamFactory factory(42);
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    seeds.insert(factory.derive_seed(i));
  }
  EXPECT_EQ(seeds.size(), 4096u);
}

TEST(RngStreamTest, TwoDimensionalSeedsDoNotCollideWithFlatOnes) {
  const runtime::RngStreamFactory factory(7);
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 64; ++i) {
    seeds.insert(factory.derive_seed(i));
    for (std::uint64_t j = 0; j < 64; ++j) {
      seeds.insert(factory.derive_seed(i, j));
    }
  }
  EXPECT_EQ(seeds.size(), 64u + 64u * 64u);
}

TEST(RngStreamTest, StreamsAreDeterministicInIndex) {
  const runtime::RngStreamFactory factory(123);
  util::Rng a = factory.stream(5);
  util::Rng b = factory.stream(5);
  for (int k = 0; k < 32; ++k) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngStreamTest, DecorrelationSmoke) {
  // Adjacent indices (the worst case for weak mixing) must produce
  // streams that look independent: each stream's mean is near 1/2 and the
  // empirical correlation of paired draws is small.
  const runtime::RngStreamFactory factory(99);
  constexpr int kDraws = 4096;
  util::Rng a = factory.stream(0);
  util::Rng b = factory.stream(1);
  double mean_a = 0.0, mean_b = 0.0, cross = 0.0;
  for (int k = 0; k < kDraws; ++k) {
    const double x = a.uniform();
    const double y = b.uniform();
    mean_a += x;
    mean_b += y;
    cross += (x - 0.5) * (y - 0.5);
  }
  mean_a /= kDraws;
  mean_b /= kDraws;
  // Correlation of n uniform pairs has sd ~ 1/sqrt(n) ~ 0.016; 5 sigma.
  const double corr = cross / kDraws / (1.0 / 12.0);
  EXPECT_NEAR(mean_a, 0.5, 0.03);
  EXPECT_NEAR(mean_b, 0.5, 0.03);
  EXPECT_LT(std::abs(corr), 0.08);
}

// ----------------------------------------------------- payoff_evaluator.h

TEST(ContentKeyTest, OrderAndValueSensitive) {
  const std::uint64_t a =
      runtime::ContentKey().mix(std::uint64_t{1}).mix(2.0).digest();
  const std::uint64_t b =
      runtime::ContentKey().mix(std::uint64_t{2}).mix(1.0).digest();
  const std::uint64_t c =
      runtime::ContentKey().mix(std::uint64_t{1}).mix(2.0).digest();
  EXPECT_NE(a, b);
  EXPECT_EQ(a, c);
  // Near-equal doubles (adjacent grid fractions) get unrelated keys.
  EXPECT_NE(runtime::ContentKey().mix(0.05).digest(),
            runtime::ContentKey().mix(0.05 + 1e-12).digest());
}

TEST(PayoffEvaluatorTest, MatrixMatchesCellFunction) {
  runtime::ThreadPoolExecutor exec(4);
  const runtime::PayoffEvaluator evaluator(exec);
  const la::Matrix m = evaluator.evaluate_matrix(
      7, 5, [](std::size_t flat) { return static_cast<double>(flat) * 1.5; });
  ASSERT_EQ(m.rows(), 7u);
  ASSERT_EQ(m.cols(), 5u);
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_DOUBLE_EQ(m(r, c), static_cast<double>(r * 5 + c) * 1.5);
    }
  }
}

TEST(PayoffEvaluatorTest, CacheSkipsRecomputation) {
  runtime::SerialExecutor exec;
  runtime::PayoffCache cache;
  const runtime::PayoffEvaluator evaluator(exec, &cache);

  std::atomic<int> computed{0};
  const auto cell = [&](std::size_t i) {
    computed.fetch_add(1);
    return static_cast<double>(i) * 2.0;
  };
  const auto key = [](std::size_t i) {
    return runtime::ContentKey().mix(static_cast<std::uint64_t>(i)).digest();
  };

  const auto first = evaluator.evaluate_cells(10, cell, key);
  EXPECT_EQ(computed.load(), 10);
  EXPECT_EQ(cache.size(), 10u);

  const auto second = evaluator.evaluate_cells(10, cell, key);
  EXPECT_EQ(computed.load(), 10) << "all cells must come from the cache";
  EXPECT_EQ(second, first);
  EXPECT_EQ(evaluator.cache_hits(), 10u);
  EXPECT_EQ(evaluator.cells_computed(), 10u);
}

TEST(PayoffEvaluatorTest, DiscretizeMatchesSerialReference) {
  const core::PoisoningGame game(
      core::PayoffCurves::analytic(0.002, 5.0, 0.06, 1.4), 100);
  const game::MatrixGame serial = game.discretize(33, 17);

  runtime::ThreadPoolExecutor exec(8);
  const game::MatrixGame parallel = game.discretize(33, 17, &exec);

  ASSERT_EQ(parallel.num_rows(), serial.num_rows());
  ASSERT_EQ(parallel.num_cols(), serial.num_cols());
  for (std::size_t i = 0; i < serial.num_rows(); ++i) {
    for (std::size_t j = 0; j < serial.num_cols(); ++j) {
      EXPECT_EQ(parallel.payoff_at(i, j), serial.payoff_at(i, j))
          << "cell (" << i << ", " << j << ")";
    }
  }
}

// ------------------------------------------------- determinism contract

const sim::ExperimentContext& small_ctx() {
  static const sim::ExperimentContext ctx = [] {
    sim::ExperimentConfig cfg = sim::fast_config(42);
    cfg.corpus.n_instances = 300;
    cfg.svm.epochs = 25;
    return sim::prepare_experiment(cfg);
  }();
  return ctx;
}

TEST(RuntimeDeterminismTest, PureSweepBitIdenticalAcrossThreadCounts) {
  const auto& ctx = small_ctx();
  const std::vector<double> grid = {0.0, 0.1, 0.25, 0.4};

  const auto serial = sim::run_pure_sweep(ctx, grid, 2, nullptr);
  runtime::ThreadPoolExecutor one(1);
  const auto threaded1 = sim::run_pure_sweep(ctx, grid, 2, &one);
  runtime::ThreadPoolExecutor eight(8);
  const auto threaded8 = sim::run_pure_sweep(ctx, grid, 2, &eight);

  ASSERT_EQ(serial.points.size(), grid.size());
  for (const auto* run : {&threaded1, &threaded8}) {
    ASSERT_EQ(run->points.size(), serial.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      // EXPECT_EQ, not NEAR: the contract is bit-identity.
      EXPECT_EQ(run->points[i].accuracy_no_attack,
                serial.points[i].accuracy_no_attack);
      EXPECT_EQ(run->points[i].accuracy_attacked,
                serial.points[i].accuracy_attacked);
      EXPECT_EQ(run->points[i].poison_survived_fraction,
                serial.points[i].poison_survived_fraction);
    }
  }
}

TEST(RuntimeDeterminismTest, MixedEvalBitIdenticalAcrossThreadCountsAndCache) {
  const auto& ctx = small_ctx();
  const defense::MixedDefenseStrategy strategy({0.1, 0.25, 0.4},
                                               {0.5, 0.3, 0.2});
  sim::MixedEvalConfig ecfg;
  ecfg.draws = 2;

  const auto serial = sim::evaluate_mixed_defense(ctx, strategy, ecfg);

  runtime::ThreadPoolExecutor eight(8);
  const auto threaded =
      sim::evaluate_mixed_defense(ctx, strategy, ecfg, &eight);

  // Cached evaluator, evaluated twice: the second pass runs entirely from
  // the cache and must reproduce the first bit-for-bit.
  runtime::PayoffCache cache;
  const runtime::PayoffEvaluator evaluator(eight, &cache);
  const auto cached1 =
      sim::evaluate_mixed_defense(ctx, strategy, ecfg, evaluator);
  const auto cached2 =
      sim::evaluate_mixed_defense(ctx, strategy, ecfg, evaluator);
  EXPECT_GT(evaluator.cache_hits(), 0u);

  for (const auto* run : {&threaded, &cached1, &cached2}) {
    EXPECT_EQ(run->adversarial_accuracy, serial.adversarial_accuracy);
    EXPECT_EQ(run->no_attack_accuracy, serial.no_attack_accuracy);
    ASSERT_EQ(run->accuracy_by_placement.size(),
              serial.accuracy_by_placement.size());
    for (std::size_t i = 0; i < serial.accuracy_by_placement.size(); ++i) {
      EXPECT_EQ(run->accuracy_by_placement[i],
                serial.accuracy_by_placement[i]);
    }
  }
}

// ------------------------------------------------- payoff cache counters

TEST(PayoffCacheTest, CountsHitsAndMisses) {
  runtime::PayoffCache cache;
  double value = 0.0;
  EXPECT_FALSE(cache.lookup(1, value));
  cache.store(1, 0.5);
  EXPECT_TRUE(cache.lookup(1, value));
  EXPECT_EQ(value, 0.5);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  cache.clear();
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(PayoffCacheTest, SnapshotIsSortedAndPreloadDoesNotCount) {
  runtime::PayoffCache cache;
  cache.store(9, 0.9);
  cache.store(3, 0.3);
  cache.preload({{5, 0.5}, {3, 777.0}});  // existing key 3 keeps its value
  const auto entries = cache.snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], (std::pair<std::uint64_t, double>{3, 0.3}));
  EXPECT_EQ(entries[1], (std::pair<std::uint64_t, double>{5, 0.5}));
  EXPECT_EQ(entries[2], (std::pair<std::uint64_t, double>{9, 0.9}));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

// ------------------------------------------------- payoff_disk_cache.h

TEST(DiskPayoffCacheTest, EncodeDecodeRoundTrip) {
  const std::vector<std::pair<std::uint64_t, double>> entries = {
      {1, 0.25}, {0xFFFFFFFFFFFFFFFFULL, -1e300}, {42, 0.0}};
  const std::string bytes = runtime::DiskPayoffCache::encode(entries);
  std::vector<std::pair<std::uint64_t, double>> decoded;
  ASSERT_TRUE(runtime::DiskPayoffCache::decode(bytes, decoded));
  EXPECT_EQ(decoded, entries);
}

TEST(DiskPayoffCacheTest, DecodeRejectsCorruption) {
  const std::string bytes =
      runtime::DiskPayoffCache::encode({{1, 0.25}, {2, 0.5}});
  std::vector<std::pair<std::uint64_t, double>> decoded;
  EXPECT_FALSE(runtime::DiskPayoffCache::decode("", decoded));
  EXPECT_FALSE(runtime::DiskPayoffCache::decode("garbage", decoded));
  // Truncated body.
  EXPECT_FALSE(
      runtime::DiskPayoffCache::decode(bytes.substr(0, bytes.size() - 8),
                                       decoded));
  // One flipped payload byte breaks the checksum.
  std::string flipped = bytes;
  flipped[20] = static_cast<char>(flipped[20] ^ 0x01);
  EXPECT_FALSE(runtime::DiskPayoffCache::decode(flipped, decoded));
  EXPECT_TRUE(decoded.empty());
  // A crafted count near 2^61 would overflow the size arithmetic; the
  // decoder must reject it instead of over-reserving or reading past
  // the buffer.
  std::string huge_count = runtime::DiskPayoffCache::encode({});
  for (int b = 0; b < 8; ++b) huge_count[8 + b] = '\xFF';
  EXPECT_FALSE(runtime::DiskPayoffCache::decode(huge_count, decoded));
}

TEST(DiskPayoffCacheTest, DisabledCacheIsANoOp) {
  runtime::DiskPayoffCache disk("");
  EXPECT_FALSE(disk.enabled());
  runtime::PayoffCache cache;
  cache.store(1, 1.0);
  EXPECT_EQ(disk.load(1, cache), 0u);
  EXPECT_EQ(disk.save(1, cache), 0u);
}

TEST(DiskPayoffCacheTest, SaveLoadRoundTripsAcrossCaches) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pg_disk_cache_test")
          .string();
  std::filesystem::remove_all(dir);
  {
    runtime::DiskPayoffCache disk(dir);
    runtime::PayoffCache cache;
    cache.store(10, 0.125);
    cache.store(11, 0.625);
    EXPECT_EQ(disk.save(77, cache), 2u);

    runtime::PayoffCache reloaded;
    EXPECT_EQ(disk.load(77, reloaded), 2u);
    double value = 0.0;
    EXPECT_TRUE(reloaded.lookup(10, value));
    EXPECT_EQ(value, 0.125);
    // Different shard: untouched.
    runtime::PayoffCache other;
    EXPECT_EQ(disk.load(78, other), 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(DiskPayoffCacheTest, UnwritableDirDegradesToColdRun) {
  // The cache dir path sits UNDER a regular file, so create_directories
  // and every open fail no matter the uid. Nothing may throw: save/load
  // report zero traffic and the caller just runs cold.
  const std::string base =
      (std::filesystem::temp_directory_path() / "pg_disk_cache_unwritable")
          .string();
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);
  { std::ofstream blocker(base + "/blocker"); blocker << "x"; }

  runtime::DiskPayoffCache disk(base + "/blocker/cache");
  EXPECT_TRUE(disk.enabled());  // configured, just not writable
  runtime::PayoffCache cache;
  cache.store(1, 0.5);
  EXPECT_NO_THROW({
    EXPECT_EQ(disk.save(42, cache), 0u);
    EXPECT_EQ(disk.load(42, cache), 0u);
    EXPECT_EQ(disk.enforce_max_bytes(), 0u);
  });
  std::filesystem::remove_all(base);
}

TEST(DiskPayoffCacheTest, EnforceMaxBytesEvictsOldestShards) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pg_disk_cache_evict")
          .string();
  std::filesystem::remove_all(dir);
  {
    runtime::PayoffCache cache;
    for (std::uint64_t k = 0; k < 8; ++k) cache.store(k, 0.5);
    // Three shards of identical size, with explicit mtimes so the
    // oldest-first order is unambiguous even on coarse filesystems.
    runtime::DiskPayoffCache writer(dir);
    ASSERT_EQ(writer.save(1, cache), 8u);
    ASSERT_EQ(writer.save(2, cache), 8u);
    ASSERT_EQ(writer.save(3, cache), 8u);
    const auto now = std::filesystem::file_time_type::clock::now();
    using std::chrono::hours;
    std::filesystem::last_write_time(writer.shard_path(1), now - hours(3));
    std::filesystem::last_write_time(writer.shard_path(2), now - hours(2));
    std::filesystem::last_write_time(writer.shard_path(3), now - hours(1));

    const auto shard_bytes = std::filesystem::file_size(writer.shard_path(1));

    // Uncapped: nothing happens.
    EXPECT_EQ(writer.enforce_max_bytes(), 0u);

    // Cap fits exactly two shards: the oldest (shard 1) goes.
    runtime::DiskPayoffCache capped(dir, 2 * shard_bytes);
    EXPECT_EQ(capped.enforce_max_bytes(), 1u);
    EXPECT_FALSE(std::filesystem::exists(capped.shard_path(1)));
    EXPECT_TRUE(std::filesystem::exists(capped.shard_path(2)));
    EXPECT_TRUE(std::filesystem::exists(capped.shard_path(3)));
    // Already within the cap: idempotent.
    EXPECT_EQ(capped.enforce_max_bytes(), 0u);

    // Tighter cap than any single shard: everything must go -- the cap
    // is a hard bound, not a suggestion.
    runtime::DiskPayoffCache tiny(dir, shard_bytes / 2);
    EXPECT_EQ(tiny.enforce_max_bytes(), 2u);
    EXPECT_FALSE(std::filesystem::exists(tiny.shard_path(2)));
    EXPECT_FALSE(std::filesystem::exists(tiny.shard_path(3)));

    // Foreign files in the directory are never candidates.
    { std::ofstream foreign(dir + "/notes.txt"); foreign << "keep me"; }
    ASSERT_EQ(writer.save(4, cache), 8u);
    runtime::DiskPayoffCache zero(dir, 1);
    EXPECT_EQ(zero.enforce_max_bytes(), 1u);
    EXPECT_TRUE(std::filesystem::exists(dir + "/notes.txt"));
  }
  std::filesystem::remove_all(dir);
}

TEST(DiskPayoffCacheTest, ConcurrentEvictionCountsOnlyOwnRemovals) {
  // Two cache instances (standing in for two worker processes sharing a
  // --cache-dir) race enforce_max_bytes over one directory. Each removal
  // must be counted by exactly one racer -- a shard that vanished under a
  // racer's feet is the OTHER side's eviction, not an error -- so the two
  // counts sum to exactly the number of files that disappeared, and the
  // "cannot evict" warning never fires for the vanished-shard case.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pg_disk_cache_race")
          .string();
  std::filesystem::remove_all(dir);
  runtime::PayoffCache cache;
  for (std::uint64_t k = 0; k < 8; ++k) cache.store(k, 0.25);
  runtime::DiskPayoffCache writer(dir);
  constexpr std::uint64_t kShards = 40;
  for (std::uint64_t s = 1; s <= kShards; ++s) {
    ASSERT_EQ(writer.save(s, cache), 8u);
  }
  const auto shard_bytes = std::filesystem::file_size(writer.shard_path(1));

  const auto live_shards = [&dir]() {
    std::size_t n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".pgpc") ++n;
    }
    return n;
  };
  ASSERT_EQ(live_shards(), kShards);

  // Capture stderr: the race must stay silent apart from the final
  // "evicted N oldest shard(s)" summary each racer prints.
  std::ostringstream captured;
  std::streambuf* old_cerr = std::cerr.rdbuf(captured.rdbuf());

  // Cap fits two shards: 38 must go, split between the racers.
  runtime::DiskPayoffCache a(dir, 2 * shard_bytes);
  runtime::DiskPayoffCache b(dir, 2 * shard_bytes);
  std::size_t evicted_a = 0;
  std::size_t evicted_b = 0;
  std::thread ta([&] { evicted_a = a.enforce_max_bytes(); });
  std::thread tb([&] { evicted_b = b.enforce_max_bytes(); });
  ta.join();
  tb.join();
  std::cerr.rdbuf(old_cerr);

  const std::size_t after = live_shards();
  EXPECT_LE(after, 2u);
  EXPECT_EQ(evicted_a + evicted_b, kShards - after);
  EXPECT_EQ(captured.str().find("cannot evict"), std::string::npos)
      << captured.str();
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------- nested parallel_for
// The depth-tagged nested scheduler: outer tasks submit inner chunks to
// the SAME pool; joins help-drain instead of sleeping, so saturation can
// slow things down but never deadlock, and determinism survives any
// interleaving.

TEST(NestedParallelTest, NestedLoopsCoverEveryIndexUnderExhaustion) {
  // 2 workers, 8 outer tasks each fanning out 8 inner chunks: far more
  // live fork-joins than threads. Every (outer, inner) pair must run
  // exactly once.
  runtime::ThreadPoolExecutor exec(2);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 8;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  exec.parallel_for_nested(0, kOuter, 1, [&](std::size_t o) {
    exec.parallel_for_nested(0, kInner, 1, [&](std::size_t i) {
      hits[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t c = 0; c < hits.size(); ++c) {
    EXPECT_EQ(hits[c].load(), 1) << "cell " << c;
  }
}

TEST(NestedParallelTest, ThreeLevelNestingTerminates) {
  runtime::ThreadPoolExecutor exec(4);
  std::atomic<int> leaves{0};
  exec.parallel_for_nested(0, 4, 1, [&](std::size_t) {
    exec.parallel_for_nested(0, 4, 1, [&](std::size_t) {
      exec.parallel_for_nested(0, 4, 1,
                               [&](std::size_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST(NestedParallelTest, InnerExceptionPropagatesThroughOuterJoin) {
  runtime::ThreadPoolExecutor exec(4);
  EXPECT_THROW(
      exec.parallel_for_nested(0, 4, 1,
                               [&](std::size_t o) {
                                 exec.parallel_for_nested(
                                     0, 4, 1, [&](std::size_t i) {
                                       if (o == 2 && i == 3) {
                                         throw std::runtime_error("inner");
                                       }
                                     });
                               }),
      std::runtime_error);
  // The executor stays usable after a failed nested loop.
  std::atomic<int> count{0};
  exec.parallel_for_nested(0, 8, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(NestedParallelTest, NestedGridBitIdenticalAcrossThreadCounts) {
  // An outer x inner grid where every cell derives its value from its own
  // RNG stream: the nested schedule (1, 2, 4, hw threads) must reproduce
  // the serial result bit for bit.
  const auto compute = [](runtime::Executor& exec) {
    constexpr std::size_t kOuter = 6;
    constexpr std::size_t kInner = 16;
    const runtime::RngStreamFactory streams(1234);
    std::vector<double> cells(kOuter * kInner, 0.0);
    exec.parallel_for_nested(0, kOuter, 1, [&](std::size_t o) {
      exec.parallel_for_nested(0, kInner, 1, [&](std::size_t i) {
        util::Rng rng = streams.stream(o, i);
        double acc = 0.0;
        for (int k = 0; k < 50; ++k) acc += rng.normal();
        cells[o * kInner + i] = acc;
      });
    });
    return cells;
  };
  runtime::SerialExecutor serial;
  const auto expected = compute(serial);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4},
        runtime::default_thread_count()}) {
    runtime::ThreadPoolExecutor exec(threads);
    EXPECT_EQ(compute(exec), expected) << threads << " threads";
  }
}

// ------------------------------------------------------------ task_group.h

TEST(TaskGroupTest, RunsEveryTaskAndWaits) {
  runtime::ThreadPoolExecutor exec(4);
  std::atomic<int> count{0};
  runtime::TaskGroup group(&exec);
  for (int i = 0; i < 32; ++i) {
    group.run([&count] { count.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 32);
  EXPECT_EQ(group.pending(), 0u);
}

TEST(TaskGroupTest, NullExecutorRunsInline) {
  std::atomic<int> count{0};
  runtime::TaskGroup group(nullptr);
  group.run([&count] { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1) << "inline task must run before wait()";
  group.wait();
}

TEST(TaskGroupTest, FirstExceptionSurfacesAtWaitAndGroupIsReusable) {
  runtime::ThreadPoolExecutor exec(2);
  runtime::TaskGroup group(&exec);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    group.run([&count, i] {
      if (i == 5) throw std::invalid_argument("task 5");
      count.fetch_add(1);
    });
  }
  EXPECT_THROW(group.wait(), std::invalid_argument);
  EXPECT_EQ(count.load(), 7) << "non-throwing tasks still complete";

  // A failed wait clears the error; the group keeps working.
  group.run([&count] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 8);
}

TEST(TaskGroupTest, GroupsNestInsidePoolTasksWithoutDeadlock) {
  runtime::ThreadPoolExecutor exec(2);
  std::atomic<int> inner_total{0};
  runtime::TaskGroup outer(&exec);
  for (int o = 0; o < 6; ++o) {
    outer.run([&] {
      runtime::TaskGroup inner(&exec);
      for (int i = 0; i < 6; ++i) {
        inner.run([&inner_total] { inner_total.fetch_add(1); });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(inner_total.load(), 36);
}

// ------------------------------------------------------ persistent_team.h

TEST(PersistentTeamTest, RunsEveryRankOncePerGeneration) {
  runtime::PersistentTeam team(4);
  ASSERT_EQ(team.size(), 4u);
  std::vector<std::atomic<int>> rank_counts(4);
  const std::function<void(std::size_t)> job = [&](std::size_t rank) {
    rank_counts[rank].fetch_add(1, std::memory_order_relaxed);
  };
  constexpr int kIterations = 200;
  for (int t = 0; t < kIterations; ++t) team.run(job);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(rank_counts[r].load(), kIterations) << "rank " << r;
  }
}

TEST(PersistentTeamTest, TeamOfOneRunsInline) {
  runtime::PersistentTeam team(1);
  int count = 0;
  team.run([&count](std::size_t rank) {
    EXPECT_EQ(rank, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(PersistentTeamTest, BarrierPublishesWorkerWritesToCaller) {
  // Each rank writes a disjoint slice; after run() returns, the caller
  // must observe every write (the barrier is the synchronization point).
  runtime::PersistentTeam team(4);
  std::vector<double> slots(64, 0.0);
  const std::function<void(std::size_t)> job = [&](std::size_t rank) {
    for (std::size_t i = rank; i < slots.size(); i += team.size()) {
      slots[i] += static_cast<double>(i);
    }
  };
  constexpr int kIterations = 100;
  for (int t = 0; t < kIterations; ++t) team.run(job);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<double>(i * kIterations)) << "slot " << i;
  }
}

TEST(PersistentTeamTest, ExceptionFromAnyRankRethrowsAndTeamSurvives) {
  runtime::PersistentTeam team(3);
  EXPECT_THROW(team.run([](std::size_t rank) {
    if (rank == 1) throw std::runtime_error("rank 1");
  }),
               std::runtime_error);
  // The barrier completed despite the throw; the team keeps working.
  std::atomic<int> count{0};
  team.run([&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

}  // namespace
}  // namespace pg
