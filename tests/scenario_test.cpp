// Tests for the scenario engine: spec parse/print round-trips, --set
// override precedence, the registry catalog, engine output equality with
// the direct library path (what the legacy benches computed), thread
// invariance, and disk-cache warm-run behavior (zero retrains, identical
// payoffs, graceful corruption fallback).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/cli.h"
#include "scenario/diff.h"
#include "scenario/engine.h"
#include "scenario/registry.h"
#include "scenario/result.h"
#include "scenario/spec.h"
#include "scenario/sweep.h"
#include "sim/experiment.h"
#include "sim/pure_sweep.h"

namespace pg::scenario {
namespace {

// ------------------------------------------------------------------ spec

TEST(SpecTest, RoundTripsThroughText) {
  ScenarioSpec spec;
  spec.name = "custom-sweep";
  spec.kind = "pure_sweep";
  spec.description = "a description, with punctuation";
  spec.seed = 1234567890123ULL;
  spec.instances = 321;
  spec.sweep_max = 0.37;
  spec.train_fraction = 0.7;  // must survive exactly
  spec.real_corpus = false;
  spec.lp_pricing = "dantzig";

  const ScenarioSpec parsed = ScenarioSpec::parse(spec.to_text());
  EXPECT_EQ(parsed.to_text(), spec.to_text());
  EXPECT_EQ(parsed.seed, spec.seed);
  EXPECT_EQ(parsed.sweep_max, spec.sweep_max);
  EXPECT_EQ(parsed.train_fraction, 0.7);
  EXPECT_FALSE(parsed.real_corpus);
}

TEST(SpecTest, ParsesJsonishSpelling) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "{\n"
      "  \"kind\": \"pure_sweep\",\n"
      "  \"instances\": 700,\n"
      "  # comment line\n"
      "  epochs = 40\n"
      "}\n");
  EXPECT_EQ(spec.kind, "pure_sweep");
  EXPECT_EQ(spec.instances, 700u);
  EXPECT_EQ(spec.epochs, 40u);
  EXPECT_EQ(spec.seed, 42u);  // untouched default
}

TEST(SpecTest, QuotedValuesMayContainSeparatorCharacters) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "\"description\": \"sweep p = 0..0.4, ratio 1:2\",\n"
      "name = a=b\n");
  EXPECT_EQ(spec.description, "sweep p = 0..0.4, ratio 1:2");
  EXPECT_EQ(spec.name, "a=b");  // unquoted: split at the FIRST separator
}

TEST(SpecTest, RejectsUnknownKeysAndMalformedValues) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.set("no_such_knob", "1"), std::invalid_argument);
  EXPECT_THROW(spec.set("instances", "12abc"), std::invalid_argument);
  EXPECT_THROW(spec.set("instances", "-3"), std::invalid_argument);
  EXPECT_THROW(spec.set("sweep_max", "zero point four"),
               std::invalid_argument);
  EXPECT_THROW(spec.set("use_cache", "maybe"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("a line without separator\n"),
               std::invalid_argument);
  EXPECT_THROW((void)spec.get("no_such_knob"), std::invalid_argument);
}

TEST(SpecTest, KeysCoverEveryFieldBothWays) {
  // get/set agree for every advertised key: set(key, get(key)) is a
  // no-op, so the table has no write-only or read-only entries.
  ScenarioSpec spec;
  spec.kind = "micro";
  for (const std::string& key : ScenarioSpec::keys()) {
    ScenarioSpec copy = spec;
    copy.set(key, spec.get(key));
    EXPECT_EQ(copy.to_text(), spec.to_text()) << "key: " << key;
  }
}

TEST(SpecTest, SizeListParsing) {
  EXPECT_EQ(parse_size_list("96, 192,256"),
            (std::vector<std::size_t>{96, 192, 256}));
  EXPECT_TRUE(parse_size_list("").empty());
  EXPECT_THROW(parse_size_list("96,banana"), std::invalid_argument);
}

// -------------------------------------------------------------- registry

TEST(RegistryTest, ListsEveryLegacyScenario) {
  const auto& registry = ScenarioRegistry::instance();
  EXPECT_GE(registry.entries().size(), 8u);
  for (const char* name :
       {"fig1", "table1", "prop1", "nsweep", "transfer", "solver_ablation",
        "defense_ablation", "solver_parallel", "micro"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    const ScenarioSpec spec = registry.make(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.kind.empty());
    EXPECT_FALSE(spec.description.empty());
  }
  EXPECT_THROW((void)registry.make("nope"), std::invalid_argument);
}

TEST(RegistryTest, HonorsBenchEnvKnobsLikeTheLegacyBenches) {
  // prop1 capped instances at min(PG_BENCH_INSTANCES, 1500).
  ASSERT_EQ(setenv("PG_BENCH_INSTANCES", "900", 1), 0);
  EXPECT_EQ(ScenarioRegistry::instance().make("prop1").instances, 900u);
  ASSERT_EQ(setenv("PG_BENCH_INSTANCES", "4000", 1), 0);
  EXPECT_EQ(ScenarioRegistry::instance().make("prop1").instances, 1500u);
  EXPECT_EQ(ScenarioRegistry::instance().make("fig1").instances, 4000u);
  ASSERT_EQ(unsetenv("PG_BENCH_INSTANCES"), 0);
}

// ------------------------------------------------------------------- cli

TEST(CliTest, ParsesFlagsAndDesugarsShorthands) {
  const CliOptions options = parse_cli(
      {"--scenario", "fig1", "--set", "instances=100", "--threads", "2",
       "--no-cache", "--cache-dir", "/tmp/x", "--out", "json", "--out-file",
       "r.json"});
  EXPECT_EQ(options.scenario, "fig1");
  EXPECT_EQ(options.out_format, "json");
  EXPECT_EQ(options.out_file, "r.json");
  ASSERT_EQ(options.overrides.size(), 4u);
  EXPECT_EQ(options.overrides[0],
            (std::pair<std::string, std::string>{"instances", "100"}));
  EXPECT_EQ(options.overrides[1].first, "threads");
  EXPECT_EQ(options.overrides[2].first, "use_cache");
  EXPECT_EQ(options.overrides[3].first, "cache_dir");
}

TEST(CliTest, RejectsBadInput) {
  EXPECT_THROW(parse_cli({"--wat"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--set", "no-equals"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--set"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--scenario", "a", "--spec", "b"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--out", "xml"}), std::invalid_argument);
}

TEST(CliTest, ListShowsTheCatalog) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_cli(parse_cli({"--list"}), out, err), 0);
  for (const std::string& name : ScenarioRegistry::instance().names()) {
    EXPECT_NE(out.str().find(name), std::string::npos) << name;
  }
}

TEST(CliTest, SetOverridesSpecFileAndLastSetWins) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pg_spec_test.txt").string();
  {
    std::ofstream file(path);
    file << "kind = pure_sweep\ninstances = 500\nepochs = 30\n";
  }
  std::ostringstream out;
  std::ostringstream err;
  const int rc = run_cli(
      parse_cli({"--spec", path, "--set", "instances=200", "--set",
                 "instances=250", "--print-spec"}),
      out, err);
  EXPECT_EQ(rc, 0) << err.str();
  const ScenarioSpec resolved = ScenarioSpec::parse(out.str());
  EXPECT_EQ(resolved.instances, 250u);  // --set beats file, last --set wins
  EXPECT_EQ(resolved.epochs, 30u);      // file beats default
  std::remove(path.c_str());
}

TEST(CliTest, ErrorsReportToStderrWithNonzeroExit) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_cli(parse_cli({"--scenario", "nope"}), out, err), 1);
  EXPECT_NE(err.str().find("unknown scenario"), std::string::npos);
}

// ---------------------------------------------------------------- engine

/// Tiny but structurally complete spec: synthetic corpus, short SVM.
ScenarioSpec tiny_spec(const std::string& kind) {
  ScenarioSpec spec;
  spec.name = "tiny_" + kind;
  spec.kind = kind;
  spec.seed = 7;
  spec.instances = 300;
  spec.epochs = 20;
  spec.real_corpus = false;
  spec.sweep_steps = 3;
  spec.replications = 1;
  spec.draws = 1;
  spec.support_min = 2;
  spec.support_max = 2;
  spec.threads = 1;
  return spec;
}

bool timing_column(const std::string& name) {
  const auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return name.size() >= s.size() &&
           name.compare(name.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with("_ms") || ends_with("_seconds");
}

/// All non-timing cells of every table plus all non-timing metrics, in a
/// canonical render, for bitwise comparisons across runs/thread counts.
std::vector<std::string> comparable_cells(const ScenarioResult& result) {
  std::vector<std::string> cells;
  for (const auto& [key, value] : result.metrics) {
    if (!timing_column(key)) cells.push_back(key + "=" + value.render());
  }
  for (const ResultTable& table : result.tables) {
    // In merged sweep tables, per-point metrics appear as rows keyed by
    // a "metric" column; a timing metric is then wall-clock data in row
    // form and is skipped like a timing column.
    std::size_t metric_column = table.columns.size();
    for (std::size_t c = 0; c < table.columns.size(); ++c) {
      if (table.columns[c] == "metric") metric_column = c;
    }
    for (const auto& row : table.rows) {
      if (metric_column < row.size() &&
          !row[metric_column].is_number() &&
          timing_column(row[metric_column].text())) {
        continue;
      }
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (timing_column(table.columns[c])) continue;
        cells.push_back(table.name + "." + table.columns[c] + "=" +
                        row[c].render());
      }
    }
  }
  return cells;
}

TEST(EngineTest, RejectsUnknownKind) {
  ScenarioSpec spec = tiny_spec("no_such_kind");
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
}

TEST(EngineTest, PureSweepMatchesDirectLibraryPath) {
  // The engine must reproduce EXACTLY what the legacy bench computed by
  // calling the sim/ entry points directly with the same knobs.
  const ScenarioSpec spec = tiny_spec("pure_sweep");
  const ScenarioResult result = run_scenario(spec);

  sim::ExperimentConfig cfg;
  cfg.seed = spec.seed;
  cfg.corpus.n_instances = spec.instances;
  cfg.svm.epochs = spec.epochs;
  cfg.try_real_corpus = false;
  const sim::ExperimentContext ctx = sim::prepare_experiment(cfg);
  const auto sweep = sim::run_pure_sweep(
      ctx, sim::sweep_grid(spec.sweep_max, spec.sweep_steps),
      spec.replications, nullptr);

  ASSERT_EQ(result.tables[0].name, "pure_sweep");
  ASSERT_EQ(result.tables[0].rows.size(), sweep.points.size());
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const auto& row = result.tables[0].rows[i];
    EXPECT_EQ(row[0].number(), sweep.points[i].removal_fraction);
    EXPECT_EQ(row[1].number(), sweep.points[i].accuracy_no_attack);
    EXPECT_EQ(row[2].number(), sweep.points[i].accuracy_attacked);
    EXPECT_EQ(row[3].number(), sweep.points[i].poison_survived_fraction);
  }
}

TEST(EngineTest, OutputBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = tiny_spec("mixed_table");
  spec.threads = 1;
  const auto serial = comparable_cells(run_scenario(spec));
  spec.threads = 3;
  const auto threaded = comparable_cells(run_scenario(spec));
  EXPECT_EQ(serial, threaded);
}

TEST(EngineTest, CachingDoesNotChangeResults) {
  ScenarioSpec spec = tiny_spec("mixed_table");
  spec.use_cache = false;
  const auto uncached = comparable_cells(run_scenario(spec));
  spec.use_cache = true;
  const auto cached = comparable_cells(run_scenario(spec));
  EXPECT_EQ(uncached, cached);
}

class DiskCacheScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("pg_scenario_cache_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(DiskCacheScenarioTest, WarmRunRetrainsNothingAndMatchesColdRun) {
  ScenarioSpec spec = tiny_spec("mixed_table");
  spec.cache_dir = dir_;

  const ScenarioResult cold = run_scenario(spec);
  EXPECT_TRUE(cold.cache.enabled);
  EXPECT_TRUE(cold.cache.disk_enabled);
  EXPECT_EQ(cold.cache.disk_entries_loaded, 0u);
  EXPECT_GT(cold.cache.cells_retrained, 0u);
  EXPECT_GT(cold.cache.disk_entries_saved, 0u);

  const ScenarioResult warm = run_scenario(spec);
  EXPECT_EQ(warm.cache.cells_retrained, 0u)
      << "warm disk-cached re-run must not retrain any payoff cell";
  EXPECT_GT(warm.cache.cache_hits, 0u);
  EXPECT_GT(warm.cache.disk_entries_loaded, 0u);
  EXPECT_EQ(comparable_cells(cold), comparable_cells(warm));
}

TEST_F(DiskCacheScenarioTest, TweakedSweepReusesOverlappingCells) {
  ScenarioSpec spec = tiny_spec("pure_sweep");
  spec.cache_dir = dir_;
  (void)run_scenario(spec);

  // Denser grid over the same range: the original grid points recur at
  // the same fractions but different grid indices, EXCEPT the endpoints
  // of this 3 -> 5 step refinement... the shared cells are the ones
  // whose (fraction, index) pair matches; at minimum the p = 0 cell.
  ScenarioSpec tweaked = spec;
  tweaked.sweep_steps = 5;
  const ScenarioResult rerun = run_scenario(tweaked);
  EXPECT_GT(rerun.cache.cache_hits, 0u);
  EXPECT_LT(rerun.cache.cells_retrained, 5u);  // reused at least one
}

TEST_F(DiskCacheScenarioTest, CorruptShardFallsBackToColdRun) {
  ScenarioSpec spec = tiny_spec("pure_sweep");
  spec.cache_dir = dir_;
  const ScenarioResult cold = run_scenario(spec);

  // Trash every shard file: the loader must ignore them, recompute, and
  // produce identical results.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::ofstream file(entry.path(), std::ios::binary | std::ios::trunc);
    file << "this is not a cache file";
  }
  const ScenarioResult recovered = run_scenario(spec);
  EXPECT_EQ(recovered.cache.disk_entries_loaded, 0u);
  EXPECT_GT(recovered.cache.cells_retrained, 0u);
  EXPECT_EQ(comparable_cells(cold), comparable_cells(recovered));
}

// ----------------------------------------------------------------- sinks

TEST(SinkTest, JsonIsMachineReadableAndCarriesCacheStats) {
  ScenarioSpec spec = tiny_spec("pure_sweep");
  const ScenarioResult result = run_scenario(spec);
  std::ostringstream out;
  write_json(result, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"scenario\": \"tiny_pure_sweep\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cells_retrained\""), std::string::npos);
  EXPECT_NE(json.find("\"tables\""), std::string::npos);

  std::ostringstream csv;
  write_csv(result, csv);
  EXPECT_NE(csv.str().find("# table,pure_sweep"), std::string::npos);

  std::ostringstream text;
  write_text(result, text);
  EXPECT_NE(text.str().find("executor threads:"), std::string::npos);

  std::ostringstream sink;
  EXPECT_THROW(write_result(result, "xml", sink), std::invalid_argument);
}

// ----------------------------------------------------------------- sweep

TEST(SweepTest, ParsesRangeAndListClauses) {
  const SweepAxis range = parse_sweep_clause("epochs=100..500:5");
  EXPECT_EQ(range.key, "epochs");
  EXPECT_EQ(range.values,
            (std::vector<std::string>{"100", "200", "300", "400", "500"}));
  EXPECT_EQ(range.clause, "epochs=100..500:5");

  // Steps default to 5 and the normalized clause spells them out.
  EXPECT_EQ(parse_sweep_clause("epochs=0..400").clause, "epochs=0..400:5");

  const SweepAxis frac = parse_sweep_clause("sweep_max=0.1..0.4:4");
  EXPECT_EQ(frac.values,
            (std::vector<std::string>{"0.1", "0.2", "0.30000000000000004",
                                      "0.4"}));

  const SweepAxis list = parse_sweep_clause(" seed = 1, 2,3 ");
  EXPECT_EQ(list.key, "seed");
  EXPECT_EQ(list.values, (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(list.clause, "seed=1,2,3");

  // Strings sweep through the list form.
  EXPECT_EQ(parse_sweep_clause("lp_pricing=bland,dantzig").values.size(), 2u);
}

TEST(SweepTest, RejectsMalformedClausesLoudly) {
  EXPECT_THROW((void)parse_sweep_clause("epochs"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_clause("=1,2"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_clause("no_such_key=1,2"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_clause("epochs="), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_clause("epochs=1,,3"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_clause("epochs=1..x:3"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_clause("epochs=1..9:1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_clause("epochs=1..9:banana"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_clause("sweep=1,2"), std::invalid_argument);
  // Run-wide envelope keys can never vary per point: reject, don't emit
  // a mislabeled grid.
  for (const char* fixed :
       {"use_cache=true,false", "cache_dir=a,b", "cache_max_bytes=1,2",
        "name=a,b", "description=a,b"}) {
    EXPECT_THROW((void)parse_sweep_clause(fixed), std::invalid_argument)
        << fixed;
  }
}

TEST(SweepTest, PlanExpandsCrossProductRowMajor) {
  ScenarioSpec spec = tiny_spec("pure_sweep");
  spec.add_sweep("epochs=10..20:3");
  spec.add_sweep("seed=1,2");
  const SweepPlan plan(spec);
  ASSERT_EQ(plan.axes().size(), 2u);
  EXPECT_EQ(plan.size(), 6u);
  EXPECT_EQ(plan.axis_keys(), (std::vector<std::string>{"epochs", "seed"}));

  // Last axis fastest: (10,1), (10,2), (15,1), ...
  const auto c0 = plan.coordinates(0);
  const auto c1 = plan.coordinates(1);
  const auto c2 = plan.coordinates(2);
  EXPECT_EQ(c0[0].second, "10");
  EXPECT_EQ(c0[1].second, "1");
  EXPECT_EQ(c1[0].second, "10");
  EXPECT_EQ(c1[1].second, "2");
  EXPECT_EQ(c2[0].second, "15");

  const ScenarioSpec child = plan.child(3);
  EXPECT_EQ(child.epochs, 15u);
  EXPECT_EQ(child.seed, 2u);
  EXPECT_TRUE(child.sweeps.empty()) << "children must be leaf specs";

  // Duplicate axes and type-invalid values fail at plan time.
  ScenarioSpec dup = spec;
  dup.add_sweep("seed=7,8");
  EXPECT_THROW((void)SweepPlan(dup), std::invalid_argument);
  ScenarioSpec bad = tiny_spec("pure_sweep");
  bad.add_sweep("epochs=0.5,1.5");  // integer field, fractional values
  EXPECT_THROW((void)SweepPlan(bad), std::invalid_argument);
}

TEST(SpecTest, SweepLinesAppendAndSetReplaces) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "kind = pure_sweep\n"
      "sweep = epochs=10..20:3\n"
      "sweep = seed=1,2\n");
  EXPECT_EQ(spec.sweeps,
            (std::vector<std::string>{"epochs=10..20:3", "seed=1,2"}));

  // to_text round-trips the axis list exactly.
  const ScenarioSpec reparsed = ScenarioSpec::parse(spec.to_text());
  EXPECT_EQ(reparsed.to_text(), spec.to_text());
  EXPECT_EQ(reparsed.sweeps, spec.sweeps);

  // set() replaces the whole list (last --set wins); empty clears.
  ScenarioSpec replaced = spec;
  replaced.set("sweep", "draws=1,2; instances=100,200");
  EXPECT_EQ(replaced.sweeps,
            (std::vector<std::string>{"draws=1,2", "instances=100,200"}));
  replaced.set("sweep", "");
  EXPECT_TRUE(replaced.sweeps.empty());

  // A rejected override must leave the axis list untouched -- neither
  // cleared nor half-replaced (strong guarantee).
  ScenarioSpec guarded = spec;
  EXPECT_THROW(guarded.set("sweep", "draws=1,2; nope=1..2:2"),
               std::invalid_argument);
  EXPECT_EQ(guarded.sweeps, spec.sweeps);
  EXPECT_THROW(guarded.add_sweep("draws=1,2; nope=3,4"),
               std::invalid_argument);
  EXPECT_EQ(guarded.sweeps, spec.sweeps);
}

// Property test: randomized specs (including sweep axes) must round-trip
// parse(to_text()) to the identical text, and malformed input must throw
// rather than fall back to a default.
TEST(SpecTest, FuzzedSpecsRoundTripExactly) {
  std::mt19937_64 rng(20260730u);
  const auto pick = [&rng](std::size_t n) {
    return static_cast<std::size_t>(rng() % n);
  };
  // Charset avoids what the line format reserves: newlines, '"' (quote
  // stripping), '#' (comments), ';' (sweep separator) -- and values are
  // generated with non-space, non-comma edges so trimming and the
  // JSON-ish trailing-comma strip cannot alter them.
  const std::string mid_chars =
      "abcdefghijklmnopqrstuvwxyzABCXYZ0123456789_-./:=(), ";
  const std::string edge_chars = "abcdefghijklmnopqrstuvwxyz0123456789_";
  const auto rand_string = [&] {
    const std::size_t len = pick(18);
    std::string s;
    for (std::size_t i = 0; i < len; ++i) {
      const bool edge = i == 0 || i + 1 == len;
      const std::string& chars = edge ? edge_chars : mid_chars;
      s.push_back(chars[pick(chars.size())]);
    }
    return s;
  };
  const auto rand_double = [&]() -> double {
    switch (pick(4)) {
      case 0: return static_cast<double>(pick(1000)) / 8.0;  // exact dyadic
      case 1: return 0.1 * static_cast<double>(pick(10));    // repeating
      case 2: return std::ldexp(static_cast<double>(rng() % (1ULL << 53)),
                                static_cast<int>(pick(60)) - 30);
      default: return static_cast<double>(pick(7));
    }
  };

  for (int iter = 0; iter < 200; ++iter) {
    ScenarioSpec spec;
    spec.name = rand_string();
    spec.kind = rand_string();
    spec.description = rand_string();
    spec.seed = rng();
    spec.instances = pick(100000);
    spec.epochs = pick(1000);
    spec.train_fraction = rand_double();
    spec.poison_fraction = rand_double();
    spec.class_separation = rand_double();
    spec.real_corpus = pick(2) == 0;
    spec.sweep_max = rand_double();
    spec.sweep_steps = pick(64);
    spec.replications = pick(8);
    spec.attacks = rand_string();
    spec.defenses = rand_string();
    spec.lp_pricing = rand_string();
    spec.threads = pick(16);
    spec.use_cache = pick(2) == 0;
    spec.cache_dir = rand_string();
    spec.cache_max_bytes = rng() % (1ULL << 40);
    const std::size_t n_axes = pick(3);
    const char* axis_keys[] = {"epochs", "seed", "train_fraction", "draws"};
    for (std::size_t a = 0; a < n_axes; ++a) {
      const std::string key = axis_keys[a];
      if (pick(2) == 0) {
        spec.add_sweep(key + "=" + std::to_string(pick(50)) + ".." +
                       std::to_string(50 + pick(50)) + ":" +
                       std::to_string(2 + pick(4)));
      } else {
        spec.add_sweep(key + "=" + std::to_string(pick(100)) + "," +
                       std::to_string(pick(100)));
      }
    }

    const std::string text = spec.to_text();
    const ScenarioSpec parsed = ScenarioSpec::parse(text);
    ASSERT_EQ(parsed.to_text(), text) << "iteration " << iter;
    ASSERT_EQ(parsed.sweeps, spec.sweeps) << "iteration " << iter;
    ASSERT_EQ(parsed.seed, spec.seed) << "iteration " << iter;
    ASSERT_EQ(parsed.train_fraction, spec.train_fraction)
        << "iteration " << iter;
  }

  // Malformed inputs: unknown keys, bad values, bad sweep clauses --
  // every one must throw, never parse to a silent default.
  ScenarioSpec probe;
  for (int iter = 0; iter < 100; ++iter) {
    const std::string junk = rand_string();
    if (junk.empty()) continue;
    bool known = false;
    for (const std::string& key : ScenarioSpec::keys()) known |= key == junk;
    if (known) continue;
    EXPECT_THROW(probe.set(junk, "1"), std::invalid_argument)
        << "unknown key '" << junk << "' must be rejected";
  }
  const char* malformed[] = {
      "instances = 12abc",    "epochs = -3",
      "sweep_max = one",      "use_cache = maybe",
      "sweep = epochs",       "sweep = epochs=1..",
      "sweep = epochs=1..9:0", "sweep = wat=1,2",
      "cache_max_bytes = big",
  };
  for (const char* line : malformed) {
    EXPECT_THROW((void)ScenarioSpec::parse(line), std::invalid_argument)
        << line;
  }
}

TEST(EngineTest, TwoAxisSweepRunsAsOneGrid) {
  ScenarioSpec spec = tiny_spec("pure_sweep");
  spec.add_sweep("epochs=10..20:3");
  spec.add_sweep("seed=1,2");
  const ScenarioResult grid = run_scenario(spec);

  EXPECT_EQ(grid.sweep_axes, (std::vector<std::string>{"epochs", "seed"}));
  ASSERT_FALSE(grid.metrics.empty());
  EXPECT_EQ(grid.metrics[0].first, "sweep_points");
  EXPECT_EQ(grid.metrics[0].second.number(), 6.0);

  // Every child table gained the two coordinate columns and the six
  // points' rows concatenated: 6 points x sweep_steps grid rows.
  const ResultTable* sweep_table = nullptr;
  const ResultTable* metrics_table = nullptr;
  for (const ResultTable& table : grid.tables) {
    if (table.name == "pure_sweep") sweep_table = &table;
    if (table.name == "sweep_metrics") metrics_table = &table;
  }
  ASSERT_NE(sweep_table, nullptr);
  ASSERT_NE(metrics_table, nullptr);
  ASSERT_GE(sweep_table->columns.size(), 2u);
  EXPECT_EQ(sweep_table->columns[0], "epochs");
  EXPECT_EQ(sweep_table->columns[1], "seed");
  EXPECT_EQ(sweep_table->rows.size(), 6u * spec.sweep_steps);
  // Point (epochs=15, seed=2) really ran at those knobs: its rows carry
  // exactly those coordinates.
  std::size_t matching = 0;
  for (const auto& row : sweep_table->rows) {
    if (row[0].number() == 15.0 && row[1].number() == 2.0) ++matching;
  }
  EXPECT_EQ(matching, spec.sweep_steps);
  EXPECT_EQ(metrics_table->columns.back(), "value");

  // The whole grid is bit-identical at 1 vs N threads.
  ScenarioSpec threaded = spec;
  threaded.threads = 3;
  EXPECT_EQ(comparable_cells(grid), comparable_cells(run_scenario(threaded)));

  // A grid point identical to a plain run produces that run's numbers:
  // the merged artifact is a concatenation, not a reinterpretation.
  ScenarioSpec single = tiny_spec("pure_sweep");
  single.epochs = 10;
  single.seed = 1;
  const ScenarioResult lone = run_scenario(single);
  const ResultTable& lone_table = lone.tables[0];
  ASSERT_EQ(lone_table.name, "pure_sweep");
  for (std::size_t r = 0; r < lone_table.rows.size(); ++r) {
    for (std::size_t c = 0; c < lone_table.columns.size(); ++c) {
      EXPECT_EQ(sweep_table->rows[r][c + 2].render(),
                lone_table.rows[r][c].render());
    }
  }
}

TEST(EngineTest, SweepingThreadsStaysBitIdentical) {
  ScenarioSpec spec = tiny_spec("pure_sweep");
  spec.add_sweep("threads=1,3");
  const ScenarioResult grid = run_scenario(spec);
  // The two points differ ONLY in their coordinate column.
  const ResultTable* table = nullptr;
  for (const ResultTable& t : grid.tables) {
    if (t.name == "pure_sweep") table = &t;
  }
  ASSERT_NE(table, nullptr);
  const std::size_t half = table->rows.size() / 2;
  ASSERT_EQ(table->rows.size(), 2 * half);
  for (std::size_t r = 0; r < half; ++r) {
    for (std::size_t c = 1; c < table->columns.size(); ++c) {
      EXPECT_EQ(table->rows[r][c].render(),
                table->rows[r + half][c].render());
    }
  }
}

TEST(EngineTest, PointParallelGridBitIdenticalAcrossThreadCounts) {
  // The whole grid dispatches point-parallel on the nested executor; the
  // merged artifact must be bit-identical at 1/2/4 threads, with rows in
  // plan order regardless of completion order.
  ScenarioSpec spec = tiny_spec("pure_sweep");
  spec.add_sweep("epochs=10..20:2");
  spec.add_sweep("seed=1,2");
  spec.threads = 1;
  const auto serial = comparable_cells(run_scenario(spec));
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    spec.threads = threads;
    EXPECT_EQ(comparable_cells(run_scenario(spec)), serial)
        << threads << " threads";
  }
}

TEST(EngineTest, DefenseAblationUsesItsExecutorAndStaysBitIdentical) {
  // The pipeline runner used to ignore its executor ((void)exec); its
  // (attack x defense) cells now dispatch cell-parallel and must still
  // reproduce the sequential rows exactly, cold and warm.
  ScenarioSpec spec = tiny_spec("defense_ablation");
  spec.threads = 1;
  const auto serial = comparable_cells(run_scenario(spec));
  spec.threads = 4;
  EXPECT_EQ(comparable_cells(run_scenario(spec)), serial);
}

TEST(EngineTest, AggregateCollapsesNamedAxes) {
  ScenarioSpec spec = tiny_spec("pure_sweep");
  spec.add_sweep("epochs=10..20:2");
  spec.add_sweep("seed=1,2");
  spec.aggregate = "seed";
  const ScenarioResult grid = run_scenario(spec);

  const ResultTable* aggregates = nullptr;
  const ResultTable* metrics = nullptr;
  for (const ResultTable& t : grid.tables) {
    if (t.name == "sweep_aggregates") aggregates = &t;
    if (t.name == "sweep_metrics") metrics = &t;
  }
  ASSERT_NE(aggregates, nullptr);
  ASSERT_NE(metrics, nullptr);
  // The aggregated axis is gone, the kept axis leads, and the stats
  // columns follow.
  EXPECT_EQ(aggregates->columns,
            (std::vector<std::string>{"epochs", "metric", "mean", "min",
                                      "max", "count"}));
  ASSERT_FALSE(aggregates->rows.empty());

  // Cross-check one group against the raw per-point metrics: the
  // clean_accuracy mean over seed at the first epochs value.
  const double epochs0 = aggregates->rows[0][0].number();
  double sum = 0.0;
  double mn = 0.0;
  double mx = 0.0;
  std::size_t count = 0;
  for (const auto& row : metrics->rows) {
    if (row[0].number() != epochs0) continue;
    if (row[2].is_number() || row[2].text() != "clean_accuracy") continue;
    const double v = row[3].number();
    if (count == 0) {
      mn = v;
      mx = v;
    }
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    ++count;
  }
  ASSERT_EQ(count, 2u) << "one value per swept seed";
  const ResultTable& agg = *aggregates;
  bool found = false;
  for (const auto& row : agg.rows) {
    if (row[0].number() != epochs0 || row[1].text() != "clean_accuracy") {
      continue;
    }
    found = true;
    EXPECT_EQ(row[2].number(), sum / static_cast<double>(count));
    EXPECT_EQ(row[3].number(), mn);
    EXPECT_EQ(row[4].number(), mx);
    EXPECT_EQ(row[5].number(), static_cast<double>(count));
  }
  EXPECT_TRUE(found);

  // Aggregating every axis leaves metric-only groups.
  spec.aggregate = "seed,epochs";
  const ScenarioResult all = run_scenario(spec);
  for (const ResultTable& t : all.tables) {
    if (t.name != "sweep_aggregates") continue;
    EXPECT_EQ(t.columns.front(), "metric");
    for (const auto& row : t.rows) {
      EXPECT_EQ(row.back().number(), 4.0) << "2x2 grid collapses fully";
    }
  }

  // Deterministic at any thread count, like everything else.
  spec.aggregate = "seed";
  spec.threads = 1;
  const auto serial = comparable_cells(run_scenario(spec));
  spec.threads = 4;
  EXPECT_EQ(comparable_cells(run_scenario(spec)), serial);
}

TEST(EngineTest, AggregateValidationFailsLoudly) {
  ScenarioSpec spec = tiny_spec("pure_sweep");
  spec.add_sweep("seed=1,2");
  spec.aggregate = "epochs";  // swept axes are seed only
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);

  ScenarioSpec no_grid = tiny_spec("pure_sweep");
  no_grid.aggregate = "seed";  // no sweep clauses at all
  EXPECT_THROW((void)run_scenario(no_grid), std::invalid_argument);
}

TEST(EngineTest, SolverParallelNarrowTableComparesBackends) {
  ScenarioSpec spec = tiny_spec("solver_parallel");
  spec.kind = "solver_parallel";
  spec.lp_sizes = "16";
  spec.fp_sizes = "24";
  spec.fp_narrow_sizes = "12,20";
  spec.timing_reps = 1;
  spec.threads = 2;
  const ScenarioResult result = run_scenario(spec);
  const ResultTable* narrow = nullptr;
  for (const ResultTable& t : result.tables) {
    if (t.name == "fp_narrow") narrow = &t;
  }
  ASSERT_NE(narrow, nullptr) << "fp_narrow_sizes must add the table";
  EXPECT_EQ(narrow->columns,
            (std::vector<std::string>{"solver", "rows", "cols", "serial_ms",
                                      "dispatch_ms", "team_ms",
                                      "speedup_vs_serial",
                                      "speedup_team_vs_dispatch"}));
  ASSERT_EQ(narrow->rows.size(), 2u);
  for (const auto& row : narrow->rows) {
    // Timings are machine-dependent; what the schema guarantees is that
    // every backend ran (positive times) and the ratios are recorded.
    EXPECT_GT(row[3].number(), 0.0);
    EXPECT_GT(row[4].number(), 0.0);
    EXPECT_GT(row[5].number(), 0.0);
    EXPECT_GT(row[6].number(), 0.0);
    EXPECT_GT(row[7].number(), 0.0);
  }
  // Default-off: no table without the spec key (golden baselines).
  spec.fp_narrow_sizes = "";
  const ScenarioResult bare = run_scenario(spec);
  for (const ResultTable& t : bare.tables) {
    EXPECT_NE(t.name, "fp_narrow");
  }
}

// ------------------------------------------------------------------ diff

namespace {

/// A tiny single-run artifact in the JSON sink's shape.
std::string artifact(double accuracy, double time_ms = 1.0,
                     const char* extra_metric = nullptr) {
  std::ostringstream os;
  os << "{\"scenario\": \"t\", \"kind\": \"pure_sweep\", \"threads\": 2,\n"
     << "\"elapsed_seconds\": 0.5, \"sweep_axes\": [\"seed\"],\n"
     << "\"cache\": {\"enabled\": true, \"cells_retrained\": 7},\n"
     << "\"metrics\": {\"clean_accuracy\": " << accuracy
     << ", \"solve_ms\": " << time_ms;
  if (extra_metric != nullptr) os << ", \"" << extra_metric << "\": 1";
  os << "},\n"
     << "\"tables\": [{\"name\": \"pure_sweep\","
     << " \"columns\": [\"seed\", \"p\", \"acc\", \"fit_ms\"],"
     << " \"rows\": [[1, 0, " << accuracy << ", " << time_ms << "],"
     << " [1, 0.5, 0.25, 2]]}]}";
  return os.str();
}

}  // namespace

TEST(DiffTest, ParsesJsonAndRejectsGarbage) {
  const JsonValue v = parse_json(
      "{\"a\": [1, -2.5e2, \"x\\n\\u0041\"], \"b\": {\"c\": true}}");
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_EQ(a->items[1].number, -250.0);
  EXPECT_EQ(a->items[2].text, "x\nA");
  EXPECT_NE(v.find("b")->find("c"), nullptr);
  EXPECT_EQ(v.find("nope"), nullptr);

  for (const char* bad :
       {"", "{", "[1,]", "{\"a\" 1}", "{\"a\": 1} trailing", "nul",
        "\"open"}) {
    EXPECT_THROW((void)parse_json(bad), std::invalid_argument) << bad;
  }
}

TEST(DiffTest, IdenticalResultsAreCleanAndTimingIsIgnored) {
  const JsonValue a = parse_json(artifact(0.75, 1.0));
  const JsonValue b = parse_json(artifact(0.75, 99.0));  // timings differ
  const ResultDiff diff = diff_results(a, b);
  EXPECT_TRUE(diff.clean());
  EXPECT_GT(diff.values_compared, 0u);
  EXPECT_EQ(diff.values_compared, diff.values_matched);

  // With timing included the _ms drift surfaces.
  DiffOptions with_timing;
  with_timing.ignore_timing = false;
  EXPECT_FALSE(diff_results(a, b, with_timing).clean());
}

TEST(DiffTest, ToleranceGatesDriftBothWays) {
  const JsonValue a = parse_json(artifact(0.750000));
  const JsonValue b = parse_json(artifact(0.750001));
  EXPECT_FALSE(diff_results(a, b).clean());  // exact mode

  DiffOptions loose;
  loose.tolerance = 1e-4;
  EXPECT_TRUE(diff_results(a, b, loose).clean());

  DiffOptions tight;
  tight.tolerance = 1e-9;
  const ResultDiff diff = diff_results(a, b, tight);
  ASSERT_EQ(diff.count(DiffKind::kDrift), 2u);  // metric + table cell
  EXPECT_TRUE(diff.entries[0].numeric);
  EXPECT_NEAR(diff.entries[0].abs_delta, 1e-6, 1e-12);
}

TEST(DiffTest, DistinguishesMissingAndExtraRowsFromDrift) {
  const JsonValue a = parse_json(
      "{\"scenario\": \"t\", \"kind\": \"k\", \"metrics\": {\"m\": 1},"
      " \"tables\": [{\"name\": \"tab\", \"columns\": [\"n\", \"v\"],"
      " \"rows\": [[1, 10], [2, 20]]}]}");
  const JsonValue b = parse_json(
      "{\"scenario\": \"t\", \"kind\": \"k\", \"metrics\": {\"m2\": 1},"
      " \"tables\": [{\"name\": \"tab\", \"columns\": [\"n\", \"v\"],"
      " \"rows\": [[2, 20], [3, 30]]}]}");
  const ResultDiff diff = diff_results(a, b);
  // Row n=1 and metric m vanished, row n=3 and metric m2 appeared; the
  // shared row n=2 matches -- no value drift anywhere.
  EXPECT_EQ(diff.count(DiffKind::kMissing), 2u);
  EXPECT_EQ(diff.count(DiffKind::kExtra), 2u);
  EXPECT_EQ(diff.count(DiffKind::kDrift), 0u);
}

TEST(DiffTest, AlignsMergedArtifactsByRunName) {
  const std::string run = artifact(0.5);
  const JsonValue a =
      parse_json("{\"fig1\": " + run + ", \"gone\": " + run + "}");
  const JsonValue b =
      parse_json("{\"fig1\": " + artifact(0.75) + ", \"new\": " + run + "}");
  const ResultDiff diff = diff_results(a, b);
  EXPECT_EQ(diff.count(DiffKind::kMissing), 1u);  // run "gone"
  EXPECT_EQ(diff.count(DiffKind::kExtra), 1u);    // run "new"
  EXPECT_GE(diff.count(DiffKind::kDrift), 1u);    // fig1 accuracy moved
  // Mixing a single run with a merged artifact is a usage error.
  EXPECT_THROW((void)diff_results(parse_json(run), a),
               std::invalid_argument);
}

TEST(DiffTest, ReportNamesTheDriftedMetric) {
  const ResultDiff diff = diff_results(parse_json(artifact(0.5)),
                                       parse_json(artifact(0.75)));
  std::ostringstream report;
  write_diff_report(diff, {}, report);
  EXPECT_NE(report.str().find("clean_accuracy"), std::string::npos);
  EXPECT_NE(report.str().find("DRIFT"), std::string::npos);
  EXPECT_NE(report.str().find("0.5 -> 0.75"), std::string::npos);
}

// -------------------------------------------------------- cli: sweep/diff

TEST(CliTest, SweepFlagAppendsAxes) {
  const CliOptions options = parse_cli(
      {"--scenario", "fig1", "--sweep", "epochs=10..20:3", "--sweep",
       "seed=1,2"});
  ASSERT_EQ(options.overrides.size(), 2u);
  EXPECT_EQ(options.overrides[0],
            (std::pair<std::string, std::string>{"sweep+", "epochs=10..20:3"}));

  std::ostringstream out;
  std::ostringstream err;
  const int rc = run_cli(parse_cli({"--scenario", "fig1", "--sweep",
                                    "epochs=10..20:3", "--sweep", "seed=1,2",
                                    "--print-spec"}),
                         out, err);
  ASSERT_EQ(rc, 0) << err.str();
  const ScenarioSpec resolved = ScenarioSpec::parse(out.str());
  EXPECT_EQ(resolved.sweeps,
            (std::vector<std::string>{"epochs=10..20:3", "seed=1,2"}));
}

TEST(CliTest, ParsesCompareFlags) {
  const CliOptions options = parse_cli(
      {"--compare", "a.json", "b.json", "--tolerance", "1e-6",
       "--update-baseline"});
  EXPECT_TRUE(options.compare);
  EXPECT_EQ(options.compare_baseline, "a.json");
  EXPECT_EQ(options.compare_candidate, "b.json");
  EXPECT_EQ(options.tolerance, 1e-6);
  EXPECT_TRUE(options.update_baseline);

  EXPECT_THROW(parse_cli({"--compare", "a.json"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--compare", "a", "b", "--scenario", "fig1"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--update-baseline"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--compare", "a", "b", "--tolerance", "-1"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--compare", "a", "b", "--tolerance", "wat"}),
               std::invalid_argument);
}

class CompareCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("pg_compare_cli_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write(const std::string& name, const std::string& body) {
    const std::string path = dir_ + "/" + name;
    std::ofstream file(path);
    file << body;
    return path;
  }
  std::string dir_;
};

TEST_F(CompareCliTest, CompareExitsZeroOnMatchOneOnDrift) {
  const std::string a = write("a.json", artifact(0.5));
  const std::string same = write("same.json", artifact(0.5, 42.0));
  const std::string drifted = write("drifted.json", artifact(0.75));

  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_cli(parse_cli({"--compare", a, same}), out, err), 0)
      << err.str();
  EXPECT_NE(out.str().find("results match"), std::string::npos);

  std::ostringstream out2;
  std::ostringstream err2;
  EXPECT_EQ(run_cli(parse_cli({"--compare", a, drifted, "--tolerance",
                               "1e-6"}),
                    out2, err2),
            1);
  EXPECT_NE(out2.str().find("DRIFT"), std::string::npos);
  EXPECT_NE(err2.str().find("differ"), std::string::npos);

  // Unreadable / malformed inputs: exit 1 with an error, no crash.
  std::ostringstream out3;
  std::ostringstream err3;
  EXPECT_EQ(run_cli(parse_cli({"--compare", a, dir_ + "/nope.json"}), out3,
                    err3),
            1);
  const std::string junk = write("junk.json", "not json at all");
  EXPECT_EQ(run_cli(parse_cli({"--compare", a, junk}), out3, err3), 1);
}

TEST_F(CompareCliTest, UpdateBaselineAcceptsTheCandidate) {
  const std::string a = write("a.json", artifact(0.5));
  const std::string b = write("b.json", artifact(0.75));

  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(
      run_cli(parse_cli({"--compare", a, b, "--update-baseline"}), out, err),
      0)
      << err.str();
  EXPECT_NE(out.str().find("baseline updated"), std::string::npos);

  // The baseline now IS the candidate: a re-compare is clean.
  std::ostringstream out2;
  std::ostringstream err2;
  EXPECT_EQ(run_cli(parse_cli({"--compare", a, b}), out2, err2), 0);
}

// ------------------------------------------- cache robustness & eviction

TEST_F(DiskCacheScenarioTest, UnwritableCacheDirDegradesToColdRun) {
  // The configured path sits under a regular file, so every mkdir/open
  // fails regardless of uid. The run must complete cold with identical
  // numbers -- never throw.
  std::filesystem::create_directories(dir_);
  { std::ofstream blocker(dir_ + "/blocker"); blocker << "x"; }

  ScenarioSpec plain = tiny_spec("pure_sweep");
  plain.use_cache = false;
  const ScenarioResult expected = run_scenario(plain);

  ScenarioSpec spec = tiny_spec("pure_sweep");
  spec.cache_dir = dir_ + "/blocker/cache";
  ScenarioResult result;
  ASSERT_NO_THROW(result = run_scenario(spec));
  EXPECT_TRUE(result.cache.disk_enabled);
  EXPECT_EQ(result.cache.disk_entries_loaded, 0u);
  EXPECT_EQ(result.cache.disk_entries_saved, 0u);
  EXPECT_GT(result.cache.cells_retrained, 0u);
  EXPECT_EQ(comparable_cells(result), comparable_cells(expected));

  // And a second cold run against the same broken dir behaves the same.
  ScenarioResult again;
  ASSERT_NO_THROW(again = run_scenario(spec));
  EXPECT_EQ(comparable_cells(again), comparable_cells(expected));
}

TEST_F(DiskCacheScenarioTest, CacheMaxBytesCapsTheDirectory) {
  ScenarioSpec spec = tiny_spec("pure_sweep");
  spec.cache_dir = dir_;
  const ScenarioResult uncapped = run_scenario(spec);
  EXPECT_GT(uncapped.cache.disk_entries_saved, 0u);
  EXPECT_EQ(uncapped.cache.disk_shards_evicted, 0u);

  std::uintmax_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    total += std::filesystem::file_size(entry.path());
  }
  ASSERT_GT(total, 1u);

  // Re-run with a cap smaller than the shard on disk: the engine still
  // finishes (identical numbers) and the directory ends under the cap.
  ScenarioSpec capped = spec;
  capped.cache_max_bytes = 1;
  const ScenarioResult result = run_scenario(capped);
  EXPECT_EQ(comparable_cells(result), comparable_cells(uncapped));
  EXPECT_GT(result.cache.disk_shards_evicted, 0u);
  EXPECT_EQ(result.cache.disk_max_bytes, 1u);
  std::uintmax_t after = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    after += std::filesystem::file_size(entry.path());
  }
  EXPECT_LE(after, 1u);
}

// --------------------------------------------- distributed sweep sharding

TEST(CoordinateValueTest, OnlyCanonicalGridRenderingsAreNumeric) {
  // Numeric: exactly the two forms format_grid_value emits -- plain
  // integer text, or the shortest round-trip double rendering.
  EXPECT_EQ(coordinate_value("10").number(), 10.0);
  EXPECT_EQ(coordinate_value("-5").number(), -5.0);
  EXPECT_EQ(coordinate_value("0").number(), 0.0);
  EXPECT_EQ(coordinate_value("0.05").number(), 0.05);
  EXPECT_EQ(coordinate_value("1e+06").number(), 1e6);

  // Everything else stays the string the spec text spelled, even when
  // strtod would happily parse it: non-finite and non-canonical numeric
  // spellings must survive a JSON round-trip as merge keys.
  for (const char* text : {"inf", "-inf", "nan", "0x10", "007", "1e3",
                           "10.0", "+5", " 10", ""}) {
    const Value v = coordinate_value(text);
    EXPECT_FALSE(v.is_number()) << "'" << text << "' must stay a string";
    EXPECT_EQ(v.render(), text);
  }
}

TEST(CliTest, ShardFlagValidation) {
  const CliOptions sharded =
      parse_cli({"--scenario", "fig1", "--shard", "2/5"});
  EXPECT_EQ(sharded.shard_index, 2u);
  EXPECT_EQ(sharded.shard_total, 5u);

  // Malformed i/N fails at parse time, before any compute.
  EXPECT_THROW(parse_cli({"--scenario", "fig1", "--shard", "3"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--scenario", "fig1", "--shard", "a/b"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--scenario", "fig1", "--shard", "1/"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--scenario", "fig1", "--shard", "/3"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--scenario", "fig1", "--shard", "-1/3"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--scenario", "fig1", "--shard", "1/0"}),
               std::invalid_argument);
  // index >= N: the stride would be empty for every worker's intent.
  EXPECT_THROW(parse_cli({"--scenario", "fig1", "--shard", "3/3"}),
               std::invalid_argument);

  // Mode exclusions, all fail-fast in parse_cli.
  EXPECT_THROW(parse_cli({"--merge", "a.json", "--scenario", "fig1"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--merge"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--compare", "a.json", "b.json", "--shard", "0/2"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--scenario", "fig1", "--shard", "0/2",
                          "--shard-exec", "2", "--out-file", "x.json"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--scenario", "fig1", "--shard-exec", "2"}),
               std::invalid_argument);  // needs --out-file
  EXPECT_THROW(parse_cli({"--scenario", "fig1", "--shard-exec", "0",
                          "--out-file", "x.json"}),
               std::invalid_argument);

  // --merge collects its trailing non-flag inputs.
  const CliOptions merge = parse_cli({"--merge", "a.json", "b.json"});
  EXPECT_TRUE(merge.merge);
  EXPECT_EQ(merge.merge_inputs,
            (std::vector<std::string>{"a.json", "b.json"}));
}

class ShardMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = tiny_spec("pure_sweep");
    spec_.add_sweep("epochs=10..20:3");
    spec_.add_sweep("seed=1,2");
  }

  // Run one shard and round-trip it through the JSON partial artifact,
  // exactly what a worker process hands to --merge.
  std::pair<std::string, JsonValue> partial(std::size_t i, std::size_t n) {
    const ScenarioResult part = run_scenario_shard(spec_, {i, n});
    std::ostringstream json;
    write_json(part, json);
    return {"shard-" + std::to_string(i), parse_json(json.str())};
  }

  ScenarioSpec spec_;
};

TEST_F(ShardMergeTest, TwoWayShardMergeIsBitIdenticalToFullRun) {
  const ScenarioResult merged = merge_partials({partial(0, 2), partial(1, 2)});
  std::ostringstream merged_json;
  write_json(merged, merged_json);

  const ScenarioResult full = run_scenario(spec_);
  std::ostringstream full_json;
  write_json(full, full_json);

  DiffOptions exact;  // tolerance 0: same machine, same bits
  const ResultDiff diff = diff_results(parse_json(full_json.str()),
                                       parse_json(merged_json.str()), exact);
  std::ostringstream report;
  write_diff_report(diff, exact, report);
  EXPECT_TRUE(diff.clean()) << report.str();
  EXPECT_FALSE(merged.partial.active());
  EXPECT_EQ(merged.sweep_axes, full.sweep_axes);
}

TEST_F(ShardMergeTest, MergeValidationNamesTheBrokenInput) {
  const auto p0 = partial(0, 2);
  const auto p1 = partial(1, 2);

  // Duplicate shard index.
  EXPECT_THROW((void)merge_partials({p0, p0}), std::invalid_argument);
  // Missing shard: the one validation failure a retry wrapper can fix,
  // so it throws the typed error carrying the absent indices (pg_run
  // --merge turns it into `missing_shards=...` + exit 4).
  try {
    (void)merge_partials({p0});
    FAIL() << "expected MissingShardsError";
  } catch (const MissingShardsError& e) {
    EXPECT_EQ(e.missing, std::vector<std::size_t>{1});
  }
  // A plain (non-partial) artifact in the mix.
  const ScenarioResult full = run_scenario(spec_);
  std::ostringstream full_json;
  write_json(full, full_json);
  EXPECT_THROW(
      (void)merge_partials({p0, {"full", parse_json(full_json.str())}}),
      std::invalid_argument);
  // Shards of DIFFERENT runs: same stride shape, different spec text.
  ScenarioSpec other = spec_;
  other.epochs = 21;
  const ScenarioResult foreign = run_scenario_shard(other, {1, 2});
  std::ostringstream foreign_json;
  write_json(foreign, foreign_json);
  EXPECT_THROW(
      (void)merge_partials({p0, {"foreign", parse_json(foreign_json.str())}}),
      std::invalid_argument);
  // Shards of mismatched fan-outs.
  const ScenarioResult third = run_scenario_shard(spec_, {1, 3});
  std::ostringstream third_json;
  write_json(third, third_json);
  EXPECT_THROW(
      (void)merge_partials({p0, {"of-three", parse_json(third_json.str())}}),
      std::invalid_argument);
  // The happy pair still merges (the fixture inputs were not consumed).
  EXPECT_NO_THROW((void)merge_partials({p0, p1}));
}

TEST_F(ShardMergeTest, ShardRequiresSweepAxesAndValidRange) {
  EXPECT_THROW((void)run_scenario_shard(spec_, {2, 2}),
               std::invalid_argument);
  EXPECT_THROW((void)run_scenario_shard(spec_, {0, 0}),
               std::invalid_argument);
  ScenarioSpec no_axes = tiny_spec("pure_sweep");
  EXPECT_THROW((void)run_scenario_shard(no_axes, {0, 2}),
               std::invalid_argument);
  // More shards than grid points: the surplus worker (index past the
  // 6-point grid) runs an EMPTY stride (legal -- merge still demands
  // all N partials).
  const ScenarioResult idle = run_scenario_shard(spec_, {6, 7});
  EXPECT_TRUE(idle.partial.active());
  EXPECT_TRUE(idle.partial.points.empty());
}

TEST_F(DiskCacheScenarioTest, ShardExecForksWorkersAndMergesTheirPartials) {
  // Drive the full orchestrator through run_cli: fork 2 workers over a
  // shared cache dir, wait, merge in-process, write the merged artifact.
  std::filesystem::create_directories(dir_);
  const std::string spec_path = dir_ + "/spec.txt";
  {
    ScenarioSpec spec = tiny_spec("pure_sweep");
    spec.add_sweep("epochs=10..20:3");
    spec.cache_dir = dir_ + "/cache";
    std::ofstream out(spec_path);
    out << spec.to_text();
  }
  const std::string merged_path = dir_ + "/merged.json";
  std::ostringstream out;
  std::ostringstream err;
  const int rc = run_cli(parse_cli({"--spec", spec_path, "--shard-exec", "2",
                                    "--out", "json", "--out-file",
                                    merged_path}),
                         out, err);
  ASSERT_EQ(rc, 0) << err.str();
  EXPECT_TRUE(std::filesystem::exists(merged_path));
  // The per-worker partials stay on disk for triage.
  EXPECT_TRUE(std::filesystem::exists(merged_path + ".shard-0"));
  EXPECT_TRUE(std::filesystem::exists(merged_path + ".shard-1"));

  // The merged artifact is value-identical to a direct run of the spec.
  std::ifstream spec_in(spec_path);
  std::ostringstream spec_text;
  spec_text << spec_in.rdbuf();
  const ScenarioResult full = run_scenario(ScenarioSpec::parse(spec_text.str()));
  std::ostringstream full_json;
  write_json(full, full_json);
  std::ifstream merged_in(merged_path);
  std::ostringstream merged_json;
  merged_json << merged_in.rdbuf();
  DiffOptions exact;
  const ResultDiff diff = diff_results(parse_json(full_json.str()),
                                       parse_json(merged_json.str()), exact);
  std::ostringstream report;
  write_diff_report(diff, exact, report);
  EXPECT_TRUE(diff.clean()) << report.str();
}

}  // namespace
}  // namespace pg::scenario
