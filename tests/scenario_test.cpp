// Tests for the scenario engine: spec parse/print round-trips, --set
// override precedence, the registry catalog, engine output equality with
// the direct library path (what the legacy benches computed), thread
// invariance, and disk-cache warm-run behavior (zero retrains, identical
// payoffs, graceful corruption fallback).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/cli.h"
#include "scenario/engine.h"
#include "scenario/registry.h"
#include "scenario/result.h"
#include "scenario/spec.h"
#include "sim/experiment.h"
#include "sim/pure_sweep.h"

namespace pg::scenario {
namespace {

// ------------------------------------------------------------------ spec

TEST(SpecTest, RoundTripsThroughText) {
  ScenarioSpec spec;
  spec.name = "custom-sweep";
  spec.kind = "pure_sweep";
  spec.description = "a description, with punctuation";
  spec.seed = 1234567890123ULL;
  spec.instances = 321;
  spec.sweep_max = 0.37;
  spec.train_fraction = 0.7;  // must survive exactly
  spec.real_corpus = false;
  spec.lp_pricing = "dantzig";

  const ScenarioSpec parsed = ScenarioSpec::parse(spec.to_text());
  EXPECT_EQ(parsed.to_text(), spec.to_text());
  EXPECT_EQ(parsed.seed, spec.seed);
  EXPECT_EQ(parsed.sweep_max, spec.sweep_max);
  EXPECT_EQ(parsed.train_fraction, 0.7);
  EXPECT_FALSE(parsed.real_corpus);
}

TEST(SpecTest, ParsesJsonishSpelling) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "{\n"
      "  \"kind\": \"pure_sweep\",\n"
      "  \"instances\": 700,\n"
      "  # comment line\n"
      "  epochs = 40\n"
      "}\n");
  EXPECT_EQ(spec.kind, "pure_sweep");
  EXPECT_EQ(spec.instances, 700u);
  EXPECT_EQ(spec.epochs, 40u);
  EXPECT_EQ(spec.seed, 42u);  // untouched default
}

TEST(SpecTest, QuotedValuesMayContainSeparatorCharacters) {
  const ScenarioSpec spec = ScenarioSpec::parse(
      "\"description\": \"sweep p = 0..0.4, ratio 1:2\",\n"
      "name = a=b\n");
  EXPECT_EQ(spec.description, "sweep p = 0..0.4, ratio 1:2");
  EXPECT_EQ(spec.name, "a=b");  // unquoted: split at the FIRST separator
}

TEST(SpecTest, RejectsUnknownKeysAndMalformedValues) {
  ScenarioSpec spec;
  EXPECT_THROW(spec.set("no_such_knob", "1"), std::invalid_argument);
  EXPECT_THROW(spec.set("instances", "12abc"), std::invalid_argument);
  EXPECT_THROW(spec.set("instances", "-3"), std::invalid_argument);
  EXPECT_THROW(spec.set("sweep_max", "zero point four"),
               std::invalid_argument);
  EXPECT_THROW(spec.set("use_cache", "maybe"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::parse("a line without separator\n"),
               std::invalid_argument);
  EXPECT_THROW((void)spec.get("no_such_knob"), std::invalid_argument);
}

TEST(SpecTest, KeysCoverEveryFieldBothWays) {
  // get/set agree for every advertised key: set(key, get(key)) is a
  // no-op, so the table has no write-only or read-only entries.
  ScenarioSpec spec;
  spec.kind = "micro";
  for (const std::string& key : ScenarioSpec::keys()) {
    ScenarioSpec copy = spec;
    copy.set(key, spec.get(key));
    EXPECT_EQ(copy.to_text(), spec.to_text()) << "key: " << key;
  }
}

TEST(SpecTest, SizeListParsing) {
  EXPECT_EQ(parse_size_list("96, 192,256"),
            (std::vector<std::size_t>{96, 192, 256}));
  EXPECT_TRUE(parse_size_list("").empty());
  EXPECT_THROW(parse_size_list("96,banana"), std::invalid_argument);
}

// -------------------------------------------------------------- registry

TEST(RegistryTest, ListsEveryLegacyScenario) {
  const auto& registry = ScenarioRegistry::instance();
  EXPECT_GE(registry.entries().size(), 8u);
  for (const char* name :
       {"fig1", "table1", "prop1", "nsweep", "transfer", "solver_ablation",
        "defense_ablation", "solver_parallel", "micro"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    const ScenarioSpec spec = registry.make(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.kind.empty());
    EXPECT_FALSE(spec.description.empty());
  }
  EXPECT_THROW((void)registry.make("nope"), std::invalid_argument);
}

TEST(RegistryTest, HonorsBenchEnvKnobsLikeTheLegacyBenches) {
  // prop1 capped instances at min(PG_BENCH_INSTANCES, 1500).
  ASSERT_EQ(setenv("PG_BENCH_INSTANCES", "900", 1), 0);
  EXPECT_EQ(ScenarioRegistry::instance().make("prop1").instances, 900u);
  ASSERT_EQ(setenv("PG_BENCH_INSTANCES", "4000", 1), 0);
  EXPECT_EQ(ScenarioRegistry::instance().make("prop1").instances, 1500u);
  EXPECT_EQ(ScenarioRegistry::instance().make("fig1").instances, 4000u);
  ASSERT_EQ(unsetenv("PG_BENCH_INSTANCES"), 0);
}

// ------------------------------------------------------------------- cli

TEST(CliTest, ParsesFlagsAndDesugarsShorthands) {
  const CliOptions options = parse_cli(
      {"--scenario", "fig1", "--set", "instances=100", "--threads", "2",
       "--no-cache", "--cache-dir", "/tmp/x", "--out", "json", "--out-file",
       "r.json"});
  EXPECT_EQ(options.scenario, "fig1");
  EXPECT_EQ(options.out_format, "json");
  EXPECT_EQ(options.out_file, "r.json");
  ASSERT_EQ(options.overrides.size(), 4u);
  EXPECT_EQ(options.overrides[0],
            (std::pair<std::string, std::string>{"instances", "100"}));
  EXPECT_EQ(options.overrides[1].first, "threads");
  EXPECT_EQ(options.overrides[2].first, "use_cache");
  EXPECT_EQ(options.overrides[3].first, "cache_dir");
}

TEST(CliTest, RejectsBadInput) {
  EXPECT_THROW(parse_cli({"--wat"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--set", "no-equals"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--set"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--scenario", "a", "--spec", "b"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--out", "xml"}), std::invalid_argument);
}

TEST(CliTest, ListShowsTheCatalog) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_cli(parse_cli({"--list"}), out, err), 0);
  for (const std::string& name : ScenarioRegistry::instance().names()) {
    EXPECT_NE(out.str().find(name), std::string::npos) << name;
  }
}

TEST(CliTest, SetOverridesSpecFileAndLastSetWins) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pg_spec_test.txt").string();
  {
    std::ofstream file(path);
    file << "kind = pure_sweep\ninstances = 500\nepochs = 30\n";
  }
  std::ostringstream out;
  std::ostringstream err;
  const int rc = run_cli(
      parse_cli({"--spec", path, "--set", "instances=200", "--set",
                 "instances=250", "--print-spec"}),
      out, err);
  EXPECT_EQ(rc, 0) << err.str();
  const ScenarioSpec resolved = ScenarioSpec::parse(out.str());
  EXPECT_EQ(resolved.instances, 250u);  // --set beats file, last --set wins
  EXPECT_EQ(resolved.epochs, 30u);      // file beats default
  std::remove(path.c_str());
}

TEST(CliTest, ErrorsReportToStderrWithNonzeroExit) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_cli(parse_cli({"--scenario", "nope"}), out, err), 1);
  EXPECT_NE(err.str().find("unknown scenario"), std::string::npos);
}

// ---------------------------------------------------------------- engine

/// Tiny but structurally complete spec: synthetic corpus, short SVM.
ScenarioSpec tiny_spec(const std::string& kind) {
  ScenarioSpec spec;
  spec.name = "tiny_" + kind;
  spec.kind = kind;
  spec.seed = 7;
  spec.instances = 300;
  spec.epochs = 20;
  spec.real_corpus = false;
  spec.sweep_steps = 3;
  spec.replications = 1;
  spec.draws = 1;
  spec.support_min = 2;
  spec.support_max = 2;
  spec.threads = 1;
  return spec;
}

bool timing_column(const std::string& name) {
  const auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return name.size() >= s.size() &&
           name.compare(name.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with("_ms") || ends_with("_seconds");
}

/// All non-timing cells of every table plus all non-timing metrics, in a
/// canonical render, for bitwise comparisons across runs/thread counts.
std::vector<std::string> comparable_cells(const ScenarioResult& result) {
  std::vector<std::string> cells;
  for (const auto& [key, value] : result.metrics) {
    if (!timing_column(key)) cells.push_back(key + "=" + value.render());
  }
  for (const ResultTable& table : result.tables) {
    for (const auto& row : table.rows) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (timing_column(table.columns[c])) continue;
        cells.push_back(table.name + "." + table.columns[c] + "=" +
                        row[c].render());
      }
    }
  }
  return cells;
}

TEST(EngineTest, RejectsUnknownKind) {
  ScenarioSpec spec = tiny_spec("no_such_kind");
  EXPECT_THROW((void)run_scenario(spec), std::invalid_argument);
}

TEST(EngineTest, PureSweepMatchesDirectLibraryPath) {
  // The engine must reproduce EXACTLY what the legacy bench computed by
  // calling the sim/ entry points directly with the same knobs.
  const ScenarioSpec spec = tiny_spec("pure_sweep");
  const ScenarioResult result = run_scenario(spec);

  sim::ExperimentConfig cfg;
  cfg.seed = spec.seed;
  cfg.corpus.n_instances = spec.instances;
  cfg.svm.epochs = spec.epochs;
  cfg.try_real_corpus = false;
  const sim::ExperimentContext ctx = sim::prepare_experiment(cfg);
  const auto sweep = sim::run_pure_sweep(
      ctx, sim::sweep_grid(spec.sweep_max, spec.sweep_steps),
      spec.replications, nullptr);

  ASSERT_EQ(result.tables[0].name, "pure_sweep");
  ASSERT_EQ(result.tables[0].rows.size(), sweep.points.size());
  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    const auto& row = result.tables[0].rows[i];
    EXPECT_EQ(row[0].number(), sweep.points[i].removal_fraction);
    EXPECT_EQ(row[1].number(), sweep.points[i].accuracy_no_attack);
    EXPECT_EQ(row[2].number(), sweep.points[i].accuracy_attacked);
    EXPECT_EQ(row[3].number(), sweep.points[i].poison_survived_fraction);
  }
}

TEST(EngineTest, OutputBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec = tiny_spec("mixed_table");
  spec.threads = 1;
  const auto serial = comparable_cells(run_scenario(spec));
  spec.threads = 3;
  const auto threaded = comparable_cells(run_scenario(spec));
  EXPECT_EQ(serial, threaded);
}

TEST(EngineTest, CachingDoesNotChangeResults) {
  ScenarioSpec spec = tiny_spec("mixed_table");
  spec.use_cache = false;
  const auto uncached = comparable_cells(run_scenario(spec));
  spec.use_cache = true;
  const auto cached = comparable_cells(run_scenario(spec));
  EXPECT_EQ(uncached, cached);
}

class DiskCacheScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("pg_scenario_cache_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(DiskCacheScenarioTest, WarmRunRetrainsNothingAndMatchesColdRun) {
  ScenarioSpec spec = tiny_spec("mixed_table");
  spec.cache_dir = dir_;

  const ScenarioResult cold = run_scenario(spec);
  EXPECT_TRUE(cold.cache.enabled);
  EXPECT_TRUE(cold.cache.disk_enabled);
  EXPECT_EQ(cold.cache.disk_entries_loaded, 0u);
  EXPECT_GT(cold.cache.cells_retrained, 0u);
  EXPECT_GT(cold.cache.disk_entries_saved, 0u);

  const ScenarioResult warm = run_scenario(spec);
  EXPECT_EQ(warm.cache.cells_retrained, 0u)
      << "warm disk-cached re-run must not retrain any payoff cell";
  EXPECT_GT(warm.cache.cache_hits, 0u);
  EXPECT_GT(warm.cache.disk_entries_loaded, 0u);
  EXPECT_EQ(comparable_cells(cold), comparable_cells(warm));
}

TEST_F(DiskCacheScenarioTest, TweakedSweepReusesOverlappingCells) {
  ScenarioSpec spec = tiny_spec("pure_sweep");
  spec.cache_dir = dir_;
  (void)run_scenario(spec);

  // Denser grid over the same range: the original grid points recur at
  // the same fractions but different grid indices, EXCEPT the endpoints
  // of this 3 -> 5 step refinement... the shared cells are the ones
  // whose (fraction, index) pair matches; at minimum the p = 0 cell.
  ScenarioSpec tweaked = spec;
  tweaked.sweep_steps = 5;
  const ScenarioResult rerun = run_scenario(tweaked);
  EXPECT_GT(rerun.cache.cache_hits, 0u);
  EXPECT_LT(rerun.cache.cells_retrained, 5u);  // reused at least one
}

TEST_F(DiskCacheScenarioTest, CorruptShardFallsBackToColdRun) {
  ScenarioSpec spec = tiny_spec("pure_sweep");
  spec.cache_dir = dir_;
  const ScenarioResult cold = run_scenario(spec);

  // Trash every shard file: the loader must ignore them, recompute, and
  // produce identical results.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::ofstream file(entry.path(), std::ios::binary | std::ios::trunc);
    file << "this is not a cache file";
  }
  const ScenarioResult recovered = run_scenario(spec);
  EXPECT_EQ(recovered.cache.disk_entries_loaded, 0u);
  EXPECT_GT(recovered.cache.cells_retrained, 0u);
  EXPECT_EQ(comparable_cells(cold), comparable_cells(recovered));
}

// ----------------------------------------------------------------- sinks

TEST(SinkTest, JsonIsMachineReadableAndCarriesCacheStats) {
  ScenarioSpec spec = tiny_spec("pure_sweep");
  const ScenarioResult result = run_scenario(spec);
  std::ostringstream out;
  write_json(result, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"scenario\": \"tiny_pure_sweep\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cells_retrained\""), std::string::npos);
  EXPECT_NE(json.find("\"tables\""), std::string::npos);

  std::ostringstream csv;
  write_csv(result, csv);
  EXPECT_NE(csv.str().find("# table,pure_sweep"), std::string::npos);

  std::ostringstream text;
  write_text(result, text);
  EXPECT_NE(text.str().find("executor threads:"), std::string::npos);

  std::ostringstream sink;
  EXPECT_THROW(write_result(result, "xml", sink), std::invalid_argument);
}

}  // namespace
}  // namespace pg::scenario
