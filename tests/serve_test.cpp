// Tests for the resident scenario service: protocol framing round-trips,
// RequestOptions precedence, served-vs-direct result equality for every
// registry scenario, warm-cache behavior across requests, concurrent-
// client coalescing (via the obs cache counters), and the protocol-error
// paths (malformed, oversized, wrong version) that must never take the
// server down.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "scenario/diff.h"
#include "scenario/engine.h"
#include "scenario/registry.h"
#include "scenario/request.h"
#include "scenario/result.h"
#include "scenario/spec.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace pg::serve {
namespace {

// --------------------------------------------------------------- protocol

TEST(ProtocolTest, RequestHeaderRoundTrips) {
  RequestHeader header;
  header.request_id = "abc.DEF_01-x";
  header.priority = 3;
  header.deadline_ms = 2500;
  header.body_bytes = 1234;
  const RequestHeader parsed =
      parse_request_header(format_request_header(header));
  EXPECT_EQ(parsed.major, kProtocolMajor);
  EXPECT_EQ(parsed.minor, kProtocolMinor);
  EXPECT_EQ(parsed.request_id, header.request_id);
  EXPECT_EQ(parsed.priority, header.priority);
  EXPECT_EQ(parsed.deadline_ms, header.deadline_ms);
  EXPECT_EQ(parsed.body_bytes, header.body_bytes);
}

TEST(ProtocolTest, ResponseHeaderRoundTrips) {
  ResponseHeader header;
  header.request_id = "r1";
  header.status = "error";
  header.body_bytes = 77;
  const ResponseHeader parsed =
      parse_response_header(format_response_header(header));
  EXPECT_EQ(parsed.request_id, "r1");
  EXPECT_EQ(parsed.status, "error");
  EXPECT_EQ(parsed.body_bytes, 77u);
}

TEST(ProtocolTest, UnknownKeysAreIgnoredForMinorGrowth) {
  const RequestHeader parsed = parse_request_header(
      "PGSERVE/1.9 req id=x len=5 shiny_new_knob=7 priority=2");
  EXPECT_EQ(parsed.minor, 9);
  EXPECT_EQ(parsed.body_bytes, 5u);
  EXPECT_EQ(parsed.priority, 2u);
}

TEST(ProtocolTest, UnsupportedMajorStillParsesSoServerCanResync) {
  const RequestHeader parsed = parse_request_header("PGSERVE/9.0 req id=a len=3");
  EXPECT_EQ(parsed.major, 9);
  EXPECT_EQ(parsed.body_bytes, 3u);
}

TEST(ProtocolTest, MalformedHeadersThrow) {
  EXPECT_THROW((void)parse_request_header("GET / HTTP/1.1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_header("PGSERVE/1.0 rsp id=a len=1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_header("PGSERVE/1.0 req id=a"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_header("PGSERVE/1.0 req id=bad/id len=1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_request_header("PGSERVE/1.0 req id=a len=nope"),
               std::invalid_argument);
}

// --------------------------------------------------------- RequestOptions

TEST(RequestOptionsTest, RegistryNameAndOverridePrecedence) {
  scenario::RequestOptions request;
  request.scenario = "fig1";
  request.overrides = {{"instances", "200"}, {"instances", "300"}};
  const scenario::ScenarioSpec spec = request.resolve();
  EXPECT_EQ(spec.kind, "pure_sweep");
  EXPECT_EQ(spec.instances, 300u);  // last override wins
}

TEST(RequestOptionsTest, SpecTextWithSweepAppend) {
  scenario::RequestOptions request;
  request.spec_text =
      "kind = pure_sweep\nsweep = epochs=10,20\n";
  request.overrides = {{"sweep+", "seed=1,2"}, {"threads", "1"}};
  const scenario::ScenarioSpec spec = request.resolve();
  ASSERT_EQ(spec.sweeps.size(), 2u);  // appended, not replaced
  EXPECT_EQ(spec.threads, 1u);
}

TEST(RequestOptionsTest, RejectsAmbiguousAndEmptySources) {
  scenario::RequestOptions both;
  both.scenario = "fig1";
  both.spec_text = "kind = pure_sweep\n";
  EXPECT_THROW((void)both.resolve(), std::invalid_argument);
  EXPECT_THROW((void)scenario::RequestOptions{}.resolve(),
               std::invalid_argument);
}

// ----------------------------------------------------------- live server

/// Shrinks a registry spec so all nine scenarios round-trip in test
/// time; values must match between the served and direct runs, which is
/// all the equality assertions need.
scenario::ScenarioSpec shrink(scenario::ScenarioSpec spec) {
  spec.set("instances", "240");
  spec.set("epochs", "8");
  spec.set("replications", "1");
  spec.set("sweep_steps", "3");
  spec.set("draws", "1");
  spec.set("support_min", "1");
  spec.set("support_max", "2");
  spec.set("solver_grid", "24");
  spec.set("solver_iterations", "200");
  spec.set("lp_sizes", "24");
  spec.set("fp_sizes", "24");
  spec.set("fp_narrow_sizes", "");
  spec.set("timing_reps", "1");
  spec.set("real_corpus", "false");
  return spec;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::mt19937_64 rng(std::random_device{}());
    dir_ = (std::filesystem::temp_directory_path() /
            ("pg_serve_test_" + std::to_string(rng())))
               .string();
    std::filesystem::create_directories(dir_ + "/cache");
    options_.socket_path = dir_ + "/serve.sock";
    options_.threads = 2;
    options_.request_workers = 2;
    options_.cache_dir = dir_ + "/cache";
  }

  void Start() {
    server_ = std::make_unique<ScenarioServer>(options_);
    server_->start();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->stop();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  [[nodiscard]] Client Connect() {
    return Client::connect_retry(options_.socket_path, 15000);
  }

  std::string dir_;
  ServeOptions options_;
  std::unique_ptr<ScenarioServer> server_;
};

TEST_F(ServeTest, EveryRegistryScenarioMatchesDirectRun) {
  Start();
  Client client = Connect();
  for (const scenario::ScenarioEntry& entry :
       scenario::ScenarioRegistry::instance().entries()) {
    const scenario::ScenarioSpec spec =
        shrink(scenario::ScenarioRegistry::instance().make(entry.name));
    const Client::Response response = client.request(spec.to_text());
    ASSERT_TRUE(response.ok()) << entry.name << ": " << response.body;

    // Direct run with the same execution envelope the server forces
    // (separate cache dir: cache traffic is diff-excluded anyway).
    scenario::ScenarioSpec direct_spec = spec;
    direct_spec.set("threads", "2");
    direct_spec.set("cache_dir", dir_ + "/cache_direct");
    const scenario::ScenarioResult direct =
        scenario::run_scenario(direct_spec);
    std::ostringstream direct_json;
    scenario::write_json(direct, direct_json);

    // Tolerance 0: the served run must be BIT-identical, and the diff
    // unwraps the response envelope on the candidate side.
    scenario::DiffOptions diff_options;
    diff_options.tolerance = 0.0;
    const scenario::ResultDiff diff =
        scenario::diff_results(scenario::parse_json(direct_json.str()),
                               scenario::parse_json(response.body),
                               diff_options);
    EXPECT_TRUE(diff.clean()) << entry.name << " served != direct";
  }
  EXPECT_EQ(server_->requests_served(),
            scenario::ScenarioRegistry::instance().entries().size());
}

TEST_F(ServeTest, SecondRequestIsServedWarm) {
  Start();
  Client client = Connect();
  const scenario::ScenarioSpec spec =
      shrink(scenario::ScenarioRegistry::instance().make("fig1"));

  const Client::Response cold = client.request(spec.to_text());
  ASSERT_TRUE(cold.ok()) << cold.body;
  const scenario::JsonValue cold_doc = scenario::parse_json(cold.body);
  const scenario::JsonValue* cold_cache =
      cold_doc.find("result")->find("cache");
  ASSERT_NE(cold_cache, nullptr);
  EXPECT_GT(cold_cache->find("cells_retrained")->number, 0.0);

  const Client::Response warm = client.request(spec.to_text());
  ASSERT_TRUE(warm.ok()) << warm.body;
  const scenario::JsonValue warm_doc = scenario::parse_json(warm.body);
  const scenario::JsonValue* warm_cache =
      warm_doc.find("result")->find("cache");
  ASSERT_NE(warm_cache, nullptr);
  // The whole point of a resident service: the second request reuses the
  // first one's shards and retrains NOTHING.
  EXPECT_EQ(warm_cache->find("cells_retrained")->number, 0.0);
  EXPECT_GT(warm_cache->find("cache_hits")->number, 0.0);
}

TEST_F(ServeTest, ConcurrentClientsCoalesceSharedCells) {
  Start();
  const scenario::ScenarioSpec spec =
      shrink(scenario::ScenarioRegistry::instance().make("fig1"));
  const std::string text = spec.to_text();

  // Counters are process-wide; take deltas around the burst.
  const std::uint64_t stores_before =
      obs::counter("obs.cache.stores").value();
  const std::uint64_t retrains_before =
      obs::counter("obs.cache.retrains").value();

  // Two clients request the SAME cold scenario at once. The shrunk fig1
  // sweep has 3 cells x 3 sub-keys; single-flight claims must compute
  // (and store) each exactly once no matter how the two requests
  // interleave.
  std::atomic<std::size_t> failures{0};
  std::vector<std::size_t> retrained(2, 0);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      Client client = Client::connect_retry(options_.socket_path, 15000);
      const Client::Response response = client.request(text);
      if (!response.ok()) {
        failures.fetch_add(1);
        return;
      }
      const scenario::JsonValue doc = scenario::parse_json(response.body);
      retrained[i] = static_cast<std::size_t>(
          doc.find("result")->find("cache")->find("cells_retrained")->number);
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0u);

  const std::uint64_t stores =
      obs::counter("obs.cache.stores").value() - stores_before;
  const std::uint64_t retrains =
      obs::counter("obs.cache.retrains").value() - retrains_before;
  // 3 sweep cells, 3 sub-keys each: every value stored exactly once.
  EXPECT_EQ(stores, 9u);
  // retrains counts evaluator-driven cells only (sweep cells count via
  // their own stats); per-run reports must sum to one cold run's worth.
  EXPECT_EQ(retrained[0] + retrained[1], 3u);
  EXPECT_EQ(retrains, 0u);
}

TEST_F(ServeTest, WrongMajorVersionGetsStructuredErrorAndConnectionLives) {
  Start();
  Client client = Connect();
  const std::string body = "abc";
  const std::string frame =
      "PGSERVE/9.0 req id=wrong-major len=" + std::to_string(body.size()) +
      "\n" + body;
  write_all(client.fd(), frame.data(), frame.size());
  std::string line;
  ASSERT_TRUE(read_line(client.fd(), line, kMaxHeaderBytes));
  const ResponseHeader header = parse_response_header(line);
  EXPECT_EQ(header.status, "error");
  EXPECT_EQ(header.request_id, "wrong-major");
  std::string envelope(header.body_bytes, '\0');
  ASSERT_TRUE(read_exact(client.fd(), envelope.data(), envelope.size()));
  EXPECT_NE(envelope.find("unsupported_protocol"), std::string::npos);

  // Same connection still serves a good request afterwards.
  const scenario::ScenarioSpec spec =
      shrink(scenario::ScenarioRegistry::instance().make("fig1"));
  const Client::Response ok = client.request(spec.to_text());
  EXPECT_TRUE(ok.ok()) << ok.body;
}

TEST_F(ServeTest, MalformedHeaderClosesConnectionButNotServer) {
  Start();
  {
    Client client = Connect();
    const std::string garbage = "GET /makefile HTTP/1.1\n\n";
    write_all(client.fd(), garbage.data(), garbage.size());
    std::string line;
    ASSERT_TRUE(read_line(client.fd(), line, kMaxHeaderBytes));
    const ResponseHeader header = parse_response_header(line);
    EXPECT_EQ(header.status, "error");
    std::string envelope(header.body_bytes, '\0');
    ASSERT_TRUE(read_exact(client.fd(), envelope.data(), envelope.size()));
    EXPECT_NE(envelope.find("bad_request"), std::string::npos);
    // The connection is closed after an unsyncable error.
    EXPECT_FALSE(read_line(client.fd(), line, kMaxHeaderBytes));
  }
  // A fresh connection works: the server survived.
  Client client = Connect();
  const scenario::ScenarioSpec spec =
      shrink(scenario::ScenarioRegistry::instance().make("fig1"));
  EXPECT_TRUE(client.request(spec.to_text()).ok());
}

TEST_F(ServeTest, OversizedBodyIsRejectedAndStreamStaysFramed) {
  options_.max_request_bytes = 1024;
  Start();
  Client client = Connect();
  const std::string big(5000, 'x');
  RequestHeader meta;
  meta.request_id = "too-big";
  const Client::Response rejected = client.request(big, meta);
  EXPECT_FALSE(rejected.ok());
  EXPECT_NE(rejected.body.find("oversized"), std::string::npos);

  // The server consumed the oversized body, so the next frame parses.
  const scenario::ScenarioSpec spec =
      shrink(scenario::ScenarioRegistry::instance().make("fig1"));
  EXPECT_TRUE(client.request(spec.to_text()).ok());
}

TEST_F(ServeTest, BadSpecsAnswerStructuredErrorsAndServerStaysUp) {
  Start();
  Client client = Connect();

  const Client::Response invalid = client.request("definitely not = a spec =");
  EXPECT_FALSE(invalid.ok());
  EXPECT_NE(invalid.body.find("invalid_spec"), std::string::npos);

  const Client::Response unknown_kind =
      client.request("kind = not_a_kind\n");
  EXPECT_FALSE(unknown_kind.ok());
  // Kind validation happens at execution time, inside the engine.
  EXPECT_NE(unknown_kind.body.find("execution_failed"), std::string::npos);

  const scenario::ScenarioSpec spec =
      shrink(scenario::ScenarioRegistry::instance().make("fig1"));
  EXPECT_TRUE(client.request(spec.to_text()).ok());
}

TEST_F(ServeTest, PerRequestTraceIsForcedOffByServerOverrides) {
  Start();
  Client client = Connect();
  scenario::ScenarioSpec spec =
      shrink(scenario::ScenarioRegistry::instance().make("fig1"));
  spec.set("trace", dir_ + "/sneaky_trace.json");
  // The server's trailing overrides force trace="" (the owner controls
  // the tracer), so this succeeds instead of tripping the engine check.
  const Client::Response response = client.request(spec.to_text());
  EXPECT_TRUE(response.ok()) << response.body;
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/sneaky_trace.json"));
}

TEST_F(ServeTest, CompareUnwrapsOkEnvelopeAndRejectsErrorEnvelope) {
  Start();
  Client client = Connect();
  const scenario::ScenarioSpec spec =
      shrink(scenario::ScenarioRegistry::instance().make("fig1"));
  const Client::Response a = client.request(spec.to_text());
  const Client::Response b = client.request(spec.to_text());
  ASSERT_TRUE(a.ok() && b.ok());

  // Envelope vs envelope: both sides unwrap.
  scenario::DiffOptions diff_options;
  diff_options.tolerance = 0.0;
  const scenario::ResultDiff diff = scenario::diff_results(
      scenario::parse_json(a.body), scenario::parse_json(b.body),
      diff_options);
  EXPECT_TRUE(diff.clean());

  // An error envelope has no result: comparing it must throw, not diff.
  const Client::Response error = client.request("kind = not_a_kind\n");
  ASSERT_FALSE(error.ok());
  EXPECT_THROW((void)scenario::diff_results(scenario::parse_json(a.body),
                                            scenario::parse_json(error.body),
                                            diff_options),
               std::invalid_argument);
}

TEST_F(ServeTest, StalesSocketIsReplacedAndLiveSocketRefused) {
  Start();
  // A second server on the SAME path must refuse: the first is live.
  ServeOptions second = options_;
  ScenarioServer other(second);
  EXPECT_THROW(other.start(), std::invalid_argument);

  // Stop the first server (removes the socket), leave a stale file.
  server_->stop();
  server_.reset();
  { std::ofstream stale(options_.socket_path); }
  ScenarioServer third(options_);
  EXPECT_THROW(third.start(), std::invalid_argument);  // not a socket
  std::filesystem::remove(options_.socket_path);
}

TEST_F(ServeTest, QueuedRequestForDeadClientIsCancelledNotComputed) {
  // One worker: client A occupies it with a slow request, client B
  // enqueues behind A and hangs up. At dequeue the worker must detect
  // the dead socket and cancel (obs.serve.cancelled) instead of burning
  // the compute on a reply nobody can read.
  options_.request_workers = 1;
  Start();

  scenario::ScenarioSpec slow =
      shrink(scenario::ScenarioRegistry::instance().make("fig1"));
  slow.set("instances", "6000");
  slow.set("epochs", "60");
  slow.set("sweep_steps", "4");
  slow.set("replications", "2");  // ~1s: plenty to park B behind it

  const std::uint64_t cancelled_before =
      obs::counter("obs.serve.cancelled").value();
  const std::uint64_t dequeues_before =
      obs::timer("obs.serve.queue_wait").stats().count;

  std::atomic<bool> a_ok{false};
  std::thread a([&] {
    Client client = Client::connect_retry(options_.socket_path, 15000);
    const Client::Response response = client.request(slow.to_text());
    a_ok.store(response.ok());
  });

  // Wait until the worker has DEQUEUED A (queue_wait samples once per
  // dequeue) -- from here it is busy for A's full runtime.
  for (int i = 0; i < 15000; ++i) {
    if (obs::timer("obs.serve.queue_wait").stats().count > dequeues_before)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(obs::timer("obs.serve.queue_wait").stats().count,
            dequeues_before);

  {
    // B: frame a valid request, then hang up without reading the reply.
    Client b = Client::connect_retry(options_.socket_path, 15000);
    const std::string body =
        shrink(scenario::ScenarioRegistry::instance().make("fig1")).to_text();
    RequestHeader header;
    header.request_id = "dead-client";
    header.body_bytes = body.size();
    const std::string frame = format_request_header(header) + body;
    write_all(b.fd(), frame.data(), frame.size());
  }  // ~Client closes the socket while the request is still queued

  a.join();
  EXPECT_TRUE(a_ok.load());

  // The worker reaches B right after A; give it a bounded moment.
  for (int i = 0; i < 15000; ++i) {
    if (obs::counter("obs.serve.cancelled").value() > cancelled_before) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(obs::counter("obs.serve.cancelled").value(),
            cancelled_before + 1);

  // The server survives and still answers live clients.
  Client check = Connect();
  const Client::Response response = check.request(
      shrink(scenario::ScenarioRegistry::instance().make("fig1")).to_text());
  EXPECT_TRUE(response.ok());
}

}  // namespace
}  // namespace pg::serve
