// Unit tests for pg::sim -- experiment setup, the pure-strategy sweep,
// curve fitting (isotonic regression) and the mixed-defense evaluation,
// all on reduced corpora so the suite stays fast.
#include <gtest/gtest.h>

#include "core/equilibrium.h"
#include "sim/curve_fit.h"
#include "sim/experiment.h"
#include "sim/mixed_eval.h"
#include "sim/pure_sweep.h"
#include "sim/support_sweep.h"

namespace pg::sim {
namespace {

const ExperimentContext& shared_ctx() {
  static const ExperimentContext ctx = [] {
    ExperimentConfig cfg = fast_config(42);
    cfg.corpus.n_instances = 700;
    cfg.svm.epochs = 50;
    return prepare_experiment(cfg);
  }();
  return ctx;
}

// -------------------------------------------------------------- experiment

TEST(ExperimentTest, PreparesPaperProtocol) {
  const auto& ctx = shared_ctx();
  EXPECT_EQ(ctx.corpus_source, "synthetic");
  // 70/30 split.
  const double total =
      static_cast<double>(ctx.train.size() + ctx.test.size());
  EXPECT_NEAR(ctx.train.size() / total, 0.7, 0.01);
  // 20% poison budget.
  EXPECT_EQ(ctx.poison_budget,
            static_cast<std::size_t>(0.2 * ctx.train.size()));
  // The corpus must be learnable: clean accuracy far above majority vote.
  const double majority =
      std::max(ctx.test.positive_fraction(), 1.0 - ctx.test.positive_fraction());
  EXPECT_GT(ctx.clean_accuracy, majority + 0.1);
}

TEST(ExperimentTest, DeterministicInSeed) {
  ExperimentConfig cfg = fast_config(7);
  cfg.corpus.n_instances = 200;
  cfg.svm.epochs = 10;
  const auto a = prepare_experiment(cfg);
  const auto b = prepare_experiment(cfg);
  EXPECT_EQ(a.clean_accuracy, b.clean_accuracy);
  EXPECT_EQ(a.train.size(), b.train.size());
  EXPECT_EQ(a.train.instance(0), b.train.instance(0));
}

TEST(ExperimentTest, BothClassesInBothSplits) {
  const auto& ctx = shared_ctx();
  EXPECT_GT(ctx.train.count_label(1), 0u);
  EXPECT_GT(ctx.train.count_label(-1), 0u);
  EXPECT_GT(ctx.test.count_label(1), 0u);
  EXPECT_GT(ctx.test.count_label(-1), 0u);
}

// -------------------------------------------------------------- pure_sweep

TEST(PureSweepTest, GridGeneration) {
  const auto g = sweep_grid(0.4, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 0.4);
  EXPECT_THROW((void)sweep_grid(0.0, 5), std::invalid_argument);
  EXPECT_THROW((void)sweep_grid(0.4, 1), std::invalid_argument);
}

TEST(PureSweepTest, ProducesBothSeries) {
  const auto& ctx = shared_ctx();
  const auto sweep = run_pure_sweep(ctx, {0.0, 0.15, 0.3}, 1);
  ASSERT_EQ(sweep.points.size(), 3u);
  for (const auto& pt : sweep.points) {
    EXPECT_GT(pt.accuracy_no_attack, 0.5);
    EXPECT_GT(pt.accuracy_attacked, 0.3);
    // The attack can only hurt.
    EXPECT_LE(pt.accuracy_attacked, pt.accuracy_no_attack + 0.02);
    // Boundary placement survives its own filter.
    EXPECT_GT(pt.poison_survived_fraction, 0.85);
  }
}

TEST(PureSweepTest, FilterMitigationShape) {
  // The paper's Fig-1 shape: some interior filter strictly beats no
  // filter under attack.
  const auto& ctx = shared_ctx();
  const auto sweep = run_pure_sweep(ctx, {0.0, 0.15, 0.25}, 2);
  const double at_zero = sweep.points[0].accuracy_attacked;
  const double best_interior = std::max(sweep.points[1].accuracy_attacked,
                                        sweep.points[2].accuracy_attacked);
  EXPECT_GT(best_interior, at_zero + 0.02);
}

// --------------------------------------------------------------- curve_fit

TEST(IsotonicTest, NonDecreasingFixesViolations) {
  const auto y = isotonic_non_decreasing({1.0, 3.0, 2.0, 4.0});
  ASSERT_EQ(y.size(), 4u);
  for (std::size_t i = 1; i < y.size(); ++i) EXPECT_GE(y[i], y[i - 1]);
  // PAV pools the violating pair {3, 2} to its mean.
  EXPECT_DOUBLE_EQ(y[1], 2.5);
  EXPECT_DOUBLE_EQ(y[2], 2.5);
}

TEST(IsotonicTest, AlreadyMonotoneUnchanged) {
  const std::vector<double> in{1.0, 2.0, 3.0};
  EXPECT_EQ(isotonic_non_decreasing(in), in);
}

TEST(IsotonicTest, NonIncreasingMirrors) {
  const auto y = isotonic_non_increasing({4.0, 2.0, 3.0, 1.0});
  for (std::size_t i = 1; i < y.size(); ++i) EXPECT_LE(y[i], y[i - 1]);
  EXPECT_DOUBLE_EQ(y[1], 2.5);
  EXPECT_DOUBLE_EQ(y[2], 2.5);
}

TEST(IsotonicTest, PreservesMean) {
  const std::vector<double> in{5.0, 1.0, 4.0, 2.0};
  const auto out = isotonic_non_decreasing(in);
  double si = 0.0;
  double so = 0.0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    si += in[i];
    so += out[i];
  }
  EXPECT_NEAR(si, so, 1e-12);
}

TEST(IsotonicTest, EmptyAndSingle) {
  EXPECT_TRUE(isotonic_non_decreasing({}).empty());
  EXPECT_EQ(isotonic_non_decreasing({7.0}), std::vector<double>{7.0});
}

TEST(CurveFitTest, ProducesMonotoneCurves) {
  const auto& ctx = shared_ctx();
  const auto sweep = run_pure_sweep(ctx, sweep_grid(0.35, 6), 1);
  const auto curves = fit_payoff_curves(sweep);
  double prev_e = curves.damage(0.0);
  double prev_g = curves.cost(0.0);
  for (double p = 0.05; p <= 0.35; p += 0.05) {
    EXPECT_LE(curves.damage(p), prev_e + 1e-12);
    EXPECT_GE(curves.cost(p), prev_g - 1e-12);
    prev_e = curves.damage(p);
    prev_g = curves.cost(p);
  }
  EXPECT_NEAR(curves.cost(0.0), 0.0, 1e-12);
  EXPECT_GE(curves.damage(0.0), 0.0);
}

TEST(CurveFitTest, DamageScaleMatchesAccuracyGap) {
  const auto& ctx = shared_ctx();
  const auto sweep = run_pure_sweep(ctx, {0.0, 0.2}, 1);
  const auto curves = fit_payoff_curves(sweep);
  // N * E(0) should be close to the no-filter accuracy gap (before the
  // isotonic smoothing shuffles a little mass around).
  const double gap = sweep.points[0].accuracy_no_attack -
                     sweep.points[0].accuracy_attacked;
  EXPECT_NEAR(curves.damage(0.0) * static_cast<double>(sweep.poison_budget),
              gap, 0.1);
}

TEST(CurveFitTest, Validation) {
  PureSweepResult empty;
  EXPECT_THROW((void)fit_payoff_curves(empty), std::invalid_argument);
}

// -------------------------------------------------------------- mixed_eval

TEST(MixedEvalTest, EvaluatesSupportPlacements) {
  const auto& ctx = shared_ctx();
  const defense::MixedDefenseStrategy s({0.1, 0.25}, {0.5, 0.5});
  MixedEvalConfig cfg;
  cfg.draws = 1;
  const auto eval = evaluate_mixed_defense(ctx, s, cfg);
  ASSERT_EQ(eval.attacker_placements.size(), 2u);
  ASSERT_EQ(eval.accuracy_by_placement.size(), 2u);
  for (double a : eval.accuracy_by_placement) {
    EXPECT_GT(a, 0.4);
    EXPECT_LE(a, 1.0);
  }
  EXPECT_LE(eval.adversarial_accuracy,
            *std::max_element(eval.accuracy_by_placement.begin(),
                              eval.accuracy_by_placement.end()) + 1e-12);
  EXPECT_GT(eval.no_attack_accuracy, 0.7);
}

TEST(MixedEvalTest, ExtraPlacementsIncluded) {
  const auto& ctx = shared_ctx();
  const defense::MixedDefenseStrategy s({0.1, 0.25}, {0.5, 0.5});
  MixedEvalConfig cfg;
  cfg.draws = 1;
  cfg.include_support_placements = false;
  cfg.extra_placements = {0.05};
  const auto eval = evaluate_mixed_defense(ctx, s, cfg);
  ASSERT_EQ(eval.attacker_placements.size(), 1u);
  EXPECT_DOUBLE_EQ(eval.attacker_placements[0], 0.05);
}

TEST(MixedEvalTest, BestPureDefensePicksArgmax) {
  PureSweepResult sweep;
  sweep.points = {{0.0, 0.9, 0.60, 1.0},
                  {0.1, 0.9, 0.80, 1.0},
                  {0.2, 0.9, 0.75, 1.0}};
  const auto best = best_pure_defense(sweep);
  EXPECT_DOUBLE_EQ(best.best_fraction, 0.1);
  EXPECT_DOUBLE_EQ(best.best_accuracy, 0.80);
}

// ------------------------------------------------------------ support_sweep

TEST(SupportSweepTest, RunsAllSizesAndRecordsTiming) {
  const auto& ctx = shared_ctx();
  const auto sweep = run_pure_sweep(ctx, sweep_grid(0.35, 5), 1);
  const auto curves = fit_payoff_curves(sweep);
  const core::PoisoningGame game(curves, ctx.poison_budget);

  MixedEvalConfig eval;
  eval.draws = 1;
  const auto rows = run_support_sweep(ctx, game, 3, {}, eval);
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].support_size, i + 1);
    EXPECT_EQ(rows[i].strategy.support_size(), i + 1);
    EXPECT_GE(rows[i].solve_seconds, 0.0);
    EXPECT_GT(rows[i].adversarial_accuracy, 0.4);
  }
  // Predicted loss is non-increasing in n.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i].predicted_loss, rows[i - 1].predicted_loss + 1e-6);
  }
}

}  // namespace
}  // namespace pg::sim
