// Tests for the SIMD kernel tier (la/simd.h), the SoA batched trainer
// (ml/batch_trainer.h), and the batched retraining paths wired through
// the payoff evaluator, the pure sweep, and the scenario engine.
//
// The load-bearing contract under test: the batched trainer is
// BIT-IDENTICAL per lane to the sequential trainers at every tier (the
// lockstep kernels preserve each lane's accumulation order and AVX2 is
// compiled without FMA), while the horizontal kernels (dot/matvec)
// reassociate and carry the documented 1e-9 tolerance. Tests that force
// a tier only run tiers detect_tier() says this host can execute, so
// the suite passes unchanged on scalar-only builds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <vector>

#include "data/synthetic.h"
#include "defense/distance_filter.h"
#include "defense/pipeline.h"
#include "la/simd.h"
#include "ml/batch_trainer.h"
#include "ml/logreg.h"
#include "ml/svm.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "runtime/payoff_evaluator.h"
#include "scenario/diff.h"
#include "scenario/engine.h"
#include "scenario/result.h"
#include "scenario/spec.h"
#include "sim/experiment.h"
#include "sim/pure_sweep.h"
#include "game/solvers.h"
#include "util/rng.h"

#ifndef PG_GOLDEN_DIR
#error "PG_GOLDEN_DIR must point at tests/golden (set by CMakeLists.txt)"
#endif

namespace pg {
namespace {

using la::simd::Tier;

/// The documented tolerance of the opt-in simd paths (README "Kernel
/// tiers"): horizontal kernels reassociate; everything per-lane is exact.
constexpr double kSimdTolerance = 1e-9;

std::vector<Tier> executable_tiers() {
  std::vector<Tier> tiers = {Tier::kScalar};
  if (la::simd::detect_tier() >= Tier::kSse2) tiers.push_back(Tier::kSse2);
  if (la::simd::detect_tier() >= Tier::kAvx2) tiers.push_back(Tier::kAvx2);
  return tiers;
}

data::Dataset blobs(std::size_t n, std::uint64_t seed, std::size_t dim = 6) {
  util::Rng rng(seed);
  return data::make_gaussian_blobs(n, dim, 4.0, rng);
}

// ------------------------------------------------------------ tier model

TEST(SimdTierTest, NamesRoundTrip) {
  EXPECT_STREQ(la::simd::tier_name(Tier::kScalar), "scalar");
  EXPECT_STREQ(la::simd::tier_name(Tier::kSse2), "sse2");
  EXPECT_STREQ(la::simd::tier_name(Tier::kAvx2), "avx2");
  EXPECT_EQ(la::simd::parse_tier("scalar"), Tier::kScalar);
  EXPECT_EQ(la::simd::parse_tier("sse2"), Tier::kSse2);
  EXPECT_EQ(la::simd::parse_tier("avx2"), Tier::kAvx2);
  EXPECT_THROW((void)la::simd::parse_tier("avx512"), std::invalid_argument);
  EXPECT_THROW((void)la::simd::parse_tier(""), std::invalid_argument);
}

TEST(SimdTierTest, DetectionIsStableAndOrdered) {
  const Tier first = la::simd::detect_tier();
  EXPECT_EQ(la::simd::detect_tier(), first);  // cached
  EXPECT_GE(first, Tier::kScalar);
  EXPECT_LE(first, Tier::kAvx2);
}

TEST(SimdTierTest, ResolveHonorsExplicitRequestAndRejectsTooHigh) {
  EXPECT_EQ(la::simd::resolve_tier("scalar"), Tier::kScalar);
  if (la::simd::detect_tier() < Tier::kAvx2) {
    EXPECT_THROW((void)la::simd::resolve_tier("avx2"), std::invalid_argument);
  } else {
    EXPECT_EQ(la::simd::resolve_tier("avx2"), Tier::kAvx2);
  }
}

TEST(SimdTierTest, OpsTableMatchesTierAndWidth) {
  for (const Tier tier : executable_tiers()) {
    const la::simd::Ops& ops = la::simd::ops(tier);
    EXPECT_EQ(ops.tier, tier);
    const std::size_t expected_width =
        tier == Tier::kScalar ? 1u : (tier == Tier::kSse2 ? 2u : 4u);
    EXPECT_EQ(ops.width, expected_width);
    EXPECT_NE(ops.dot, nullptr);
    EXPECT_NE(ops.axpy, nullptr);
    EXPECT_NE(ops.scale, nullptr);
    EXPECT_NE(ops.matvec, nullptr);
    EXPECT_NE(ops.soa_gather, nullptr);
    EXPECT_NE(ops.soa_score, nullptr);
    EXPECT_NE(ops.soa_affine_step, nullptr);
    EXPECT_NE(ops.soa_logreg_step, nullptr);
    EXPECT_NE(ops.soa_affine_fused, nullptr);
    EXPECT_NE(ops.soa_logreg_fused, nullptr);
  }
}

// ----------------------------------------------------- kernel agreement

TEST(SimdKernelTest, HorizontalKernelsAgreeAcrossTiers) {
  util::Rng rng(11);
  const std::size_t n = 257;  // odd: exercises every tail path
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-1.0, 1.0);
    y[i] = rng.uniform(-1.0, 1.0);
  }
  const la::simd::Ops& ref = la::simd::ops(Tier::kScalar);
  const double ref_dot = ref.dot(x.data(), y.data(), n);
  for (const Tier tier : executable_tiers()) {
    SCOPED_TRACE(la::simd::tier_name(tier));
    const la::simd::Ops& ops = la::simd::ops(tier);
    EXPECT_NEAR(ops.dot(x.data(), y.data(), n), ref_dot, kSimdTolerance);

    // axpy and scale are element-wise: exact on every tier.
    std::vector<double> ya = y, yb = y;
    ref.axpy(0.75, x.data(), ya.data(), n);
    ops.axpy(0.75, x.data(), yb.data(), n);
    EXPECT_EQ(ya, yb);
    std::vector<double> xa = x, xb = x;
    ref.scale(xa.data(), 1.25, n);
    ops.scale(xb.data(), 1.25, n);
    EXPECT_EQ(xa, xb);

    const std::size_t rows = 13, cols = 19;
    std::vector<double> a(rows * cols);
    for (double& v : a) v = rng.uniform(-1.0, 1.0);
    std::vector<double> out_ref(rows), out(rows);
    ref.matvec(a.data(), rows, cols, x.data(), out_ref.data());
    ops.matvec(a.data(), rows, cols, x.data(), out.data());
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_NEAR(out[r], out_ref[r], kSimdTolerance);
    }
  }
}

// --------------------------------------------------------- plan_batches

TEST(BatchPlanTest, PartitionsBySizeDescendingDeterministically) {
  const std::vector<std::size_t> sizes = {5, 9, 9, 2, 7, 9, 1};
  const auto batches = ml::plan_batches(sizes, 4);
  ASSERT_EQ(batches.size(), 2u);
  // Descending by size, ties by ascending index.
  EXPECT_EQ(batches[0], (std::vector<std::size_t>{1, 2, 5, 4}));
  EXPECT_EQ(batches[1], (std::vector<std::size_t>{0, 3, 6}));
  // Every index exactly once.
  std::vector<std::size_t> all;
  for (const auto& b : batches) all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  std::vector<std::size_t> expect(sizes.size());
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(all, expect);
}

// ------------------------------------------- batched trainer bit-identity

/// K cells with deliberately RAGGED sizes (and K possibly not a multiple
/// of the vector width), each with its own dataset and RNG stream.
std::vector<ml::BatchCell> make_cells(const std::vector<data::Dataset>& data) {
  std::vector<ml::BatchCell> cells;
  for (std::size_t k = 0; k < data.size(); ++k) {
    cells.push_back({&data[k], util::Rng(1000 + 17 * k)});
  }
  return cells;
}

TEST(BatchedTrainerTest, SvmBitIdenticalToSequentialForEveryWidth) {
  ml::SvmConfig cfg;
  cfg.epochs = 15;
  for (const Tier tier : executable_tiers()) {
    const ml::BatchedLinearTrainer trainer(tier);
    for (std::size_t K = 1; K <= 8; ++K) {
      SCOPED_TRACE(std::string(la::simd::tier_name(tier)) + " K=" +
                   std::to_string(K));
      std::vector<data::Dataset> data;
      for (std::size_t k = 0; k < K; ++k) {
        data.push_back(blobs(40 + 13 * k, 7 * K + k));  // ragged sizes
      }
      auto cells = make_cells(data);
      const auto models = trainer.train_svm(cfg, cells);
      ASSERT_EQ(models.size(), K);
      for (std::size_t k = 0; k < K; ++k) {
        util::Rng rng(1000 + 17 * k);
        const ml::LinearModel seq = ml::SvmTrainer(cfg).train(data[k], rng);
        EXPECT_EQ(models[k].bias(), seq.bias()) << "lane " << k;
        ASSERT_EQ(models[k].weights().size(), seq.weights().size());
        for (std::size_t c = 0; c < seq.weights().size(); ++c) {
          EXPECT_EQ(models[k].weights()[c], seq.weights()[c])
              << "lane " << k << " coeff " << c;
        }
      }
    }
  }
}

TEST(BatchedTrainerTest, LogRegBitIdenticalToSequential) {
  ml::LogRegConfig cfg;
  cfg.epochs = 10;
  for (const Tier tier : executable_tiers()) {
    const ml::BatchedLinearTrainer trainer(tier);
    const std::size_t K = 6;  // ragged + not a width multiple
    SCOPED_TRACE(la::simd::tier_name(tier));
    std::vector<data::Dataset> data;
    for (std::size_t k = 0; k < K; ++k) {
      data.push_back(blobs(30 + 11 * k, 90 + k));
    }
    auto cells = make_cells(data);
    const auto models = trainer.train_logreg(cfg, cells);
    ASSERT_EQ(models.size(), K);
    for (std::size_t k = 0; k < K; ++k) {
      util::Rng rng(1000 + 17 * k);
      const ml::LinearModel seq = ml::LogRegTrainer(cfg).train(data[k], rng);
      EXPECT_EQ(models[k].bias(), seq.bias()) << "lane " << k;
      for (std::size_t c = 0; c < seq.weights().size(); ++c) {
        EXPECT_EQ(models[k].weights()[c], seq.weights()[c])
            << "lane " << k << " coeff " << c;
      }
    }
  }
}

TEST(BatchedTrainerTest, AdvancesRngExactlyLikeSequential) {
  // The cells' rng streams must be consumed identically, so a caller can
  // keep using them afterwards without drift.
  ml::SvmConfig cfg;
  cfg.epochs = 5;
  std::vector<data::Dataset> data = {blobs(30, 1), blobs(45, 2)};
  auto cells = make_cells(data);
  const ml::BatchedLinearTrainer trainer(Tier::kScalar);
  (void)trainer.train_svm(cfg, cells);
  for (std::size_t k = 0; k < data.size(); ++k) {
    util::Rng rng(1000 + 17 * k);
    (void)ml::SvmTrainer(cfg).train(data[k], rng);
    EXPECT_EQ(cells[k].rng.uniform(), rng.uniform()) << "lane " << k;
  }
}

TEST(BatchedTrainerTest, RejectsMalformedBatches) {
  const ml::BatchedLinearTrainer trainer(Tier::kScalar);
  ml::SvmConfig cfg;
  std::vector<ml::BatchCell> empty;
  EXPECT_THROW((void)trainer.train_svm(cfg, empty), std::invalid_argument);

  // Mismatched dims.
  data::Dataset a = blobs(20, 3, 4);
  data::Dataset b = blobs(20, 4, 5);
  std::vector<ml::BatchCell> mixed = {{&a, util::Rng(1)}, {&b, util::Rng(2)}};
  EXPECT_THROW((void)trainer.train_svm(cfg, mixed), std::invalid_argument);

  // Too many lanes.
  data::Dataset c = blobs(10, 5, 3);
  std::vector<ml::BatchCell> wide(la::simd::kMaxSoaLanes + 1,
                                  {&c, util::Rng(3)});
  EXPECT_THROW((void)trainer.train_svm(cfg, wide), std::invalid_argument);
}

// --------------------------------------------------- pipeline split path

TEST(PipelineSplitTest, PrepareTrainFinishMatchesRun) {
  const data::Dataset train = blobs(120, 21);
  const data::Dataset test = blobs(60, 22);
  defense::PipelineConfig pcfg;
  pcfg.svm.epochs = 20;
  const defense::Pipeline pipeline(pcfg);
  defense::DistanceFilterConfig fcfg;
  fcfg.removal_fraction = 0.15;
  const defense::DistanceFilter filter(fcfg);

  util::Rng rng_a(5);
  const auto direct = pipeline.run(train, test, nullptr, 0, &filter, rng_a);

  util::Rng rng_b(5);
  auto prep = pipeline.prepare(train, test, nullptr, 0, &filter, rng_b);
  const ml::LinearModel model =
      ml::SvmTrainer(pcfg.svm).train(prep.train, prep.train_rng);
  const auto split = defense::Pipeline::finish(std::move(prep), model);

  EXPECT_EQ(direct.test_accuracy, split.test_accuracy);
  EXPECT_EQ(direct.train_size, split.train_size);
  EXPECT_EQ(direct.model.bias(), split.model.bias());
  EXPECT_EQ(direct.model.weights(), split.model.weights());
}

// ------------------------------------------- evaluate_cells_batched

TEST(EvaluatorBatchedTest, MatchesPerCellEvaluationAndCacheSemantics) {
  runtime::SerialExecutor exec;
  runtime::PayoffCache cache;
  const runtime::PayoffEvaluator evaluator(exec, &cache);
  const std::size_t count = 10;
  const auto key = [](std::size_t i) { return 0x9000 + i; };
  const auto batch = [](const std::vector<std::size_t>& idx,
                        std::vector<double>& values) {
    for (const std::size_t i : idx) values[i] = 2.0 * static_cast<double>(i);
  };
  const auto cold = evaluator.evaluate_cells_batched(count, batch, key);
  ASSERT_EQ(cold.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(cold[i], 2.0 * static_cast<double>(i));
  }
  EXPECT_EQ(evaluator.cells_computed(), count);
  EXPECT_EQ(cache.stats().misses, count);

  // Warm rerun: every cell is a hit, batch() never runs.
  const auto warm = evaluator.evaluate_cells_batched(
      count,
      [](const std::vector<std::size_t>&, std::vector<double>&) {
        FAIL() << "warm rerun must not recompute";
      },
      key);
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(evaluator.cells_computed(), count);
  EXPECT_EQ(cache.stats().hits, count);

  // Keyless: always recomputes, never touches the cache.
  const auto keyless = evaluator.evaluate_cells_batched(count, batch);
  EXPECT_EQ(keyless, cold);
  EXPECT_EQ(cache.stats().misses, count);
}

TEST(EvaluatorBatchedTest, AbandonOnThrowLeavesCacheReusable) {
  runtime::SerialExecutor exec;
  runtime::PayoffCache cache;
  const runtime::PayoffEvaluator evaluator(exec, &cache);
  const auto key = [](std::size_t i) { return 0xA000 + i; };
  EXPECT_THROW(
      (void)evaluator.evaluate_cells_batched(
          3,
          [](const std::vector<std::size_t>&, std::vector<double>&) {
            throw std::runtime_error("boom");
          },
          key),
      std::runtime_error);
  // The claims were abandoned, so a second attempt can own them again.
  const auto ok = evaluator.evaluate_cells_batched(
      3,
      [](const std::vector<std::size_t>& idx, std::vector<double>& values) {
        for (const std::size_t i : idx) values[i] = 1.0;
      },
      key);
  EXPECT_EQ(ok, (std::vector<double>{1.0, 1.0, 1.0}));
}

// --------------------------------------------------- batched pure sweep

const sim::ExperimentContext& sweep_ctx() {
  static const sim::ExperimentContext ctx = [] {
    sim::ExperimentConfig cfg = sim::fast_config(42);
    cfg.corpus.n_instances = 300;
    cfg.svm.epochs = 15;
    return sim::prepare_experiment(cfg);
  }();
  return ctx;
}

TEST(BatchedSweepTest, MatchesReferenceWithinTolerance) {
  const auto& ctx = sweep_ctx();
  const std::vector<double> grid = {0.0, 0.1, 0.2, 0.3};
  const auto reference = sim::run_pure_sweep(ctx, grid, 2);
  for (const Tier tier : executable_tiers()) {
    SCOPED_TRACE(la::simd::tier_name(tier));
    sim::RetrainKernel kernel;
    kernel.tier = tier;
    const auto batched =
        sim::run_pure_sweep(ctx, grid, 2, nullptr, nullptr, nullptr, &kernel);
    ASSERT_EQ(batched.points.size(), reference.points.size());
    for (std::size_t i = 0; i < reference.points.size(); ++i) {
      EXPECT_NEAR(batched.points[i].accuracy_no_attack,
                  reference.points[i].accuracy_no_attack, kSimdTolerance);
      EXPECT_NEAR(batched.points[i].accuracy_attacked,
                  reference.points[i].accuracy_attacked, kSimdTolerance);
      EXPECT_NEAR(batched.points[i].poison_survived_fraction,
                  reference.points[i].poison_survived_fraction,
                  kSimdTolerance);
    }
  }
}

TEST(BatchedSweepTest, CachedAndParallelRunsAgree) {
  const auto& ctx = sweep_ctx();
  const std::vector<double> grid = {0.0, 0.15, 0.3};
  sim::RetrainKernel kernel;  // scalar tier: runs everywhere
  kernel.batch_width = 3;     // force ragged batches

  const auto serial =
      sim::run_pure_sweep(ctx, grid, 2, nullptr, nullptr, nullptr, &kernel);

  runtime::ThreadPoolExecutor exec(4);
  runtime::PayoffCache cache;
  sim::PureSweepStats stats;
  const auto cold =
      sim::run_pure_sweep(ctx, grid, 2, &exec, &cache, &stats, &kernel);
  EXPECT_EQ(stats.cells_retrained, grid.size() * 2);
  sim::PureSweepStats warm_stats;
  const auto warm =
      sim::run_pure_sweep(ctx, grid, 2, &exec, &cache, &warm_stats, &kernel);
  EXPECT_EQ(warm_stats.cells_retrained, 0u);
  EXPECT_EQ(warm_stats.cache_hits, grid.size() * 2);

  ASSERT_EQ(cold.points.size(), serial.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    // Same kernel, different executor/cache: identical cell values.
    EXPECT_EQ(cold.points[i].accuracy_attacked,
              serial.points[i].accuracy_attacked);
    EXPECT_EQ(warm.points[i].accuracy_attacked,
              serial.points[i].accuracy_attacked);
    EXPECT_EQ(cold.points[i].accuracy_no_attack,
              serial.points[i].accuracy_no_attack);
  }
}

// ----------------------------------------------------- engine + goldens

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(SimdGoldenTest, SweepGridWithSimdKernelMatchesCommittedGolden) {
  // The committed sweep_grid baseline was produced by the reference
  // kernel; the simd kernel must land within the documented tolerance.
  // Forcing the scalar tier keeps the test meaningful on any host (same
  // batched code path, vector width 1).
  const std::filesystem::path spec_path =
      std::filesystem::path(PG_GOLDEN_DIR) / "sweep_grid.spec";
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::parse(read_file(spec_path));
  spec.kernel = "simd";
  spec.simd = "scalar";
  const scenario::ScenarioResult result = scenario::run_scenario(spec);
  std::ostringstream json;
  scenario::write_json(result, json);

  std::filesystem::path json_path = spec_path;
  json_path.replace_extension(".json");
  const scenario::JsonValue baseline =
      scenario::parse_json(read_file(json_path));
  const scenario::JsonValue candidate = scenario::parse_json(json.str());
  scenario::DiffOptions options;
  options.tolerance = kSimdTolerance;
  const scenario::ResultDiff diff =
      scenario::diff_results(baseline, candidate, options);
  std::ostringstream report;
  scenario::write_diff_report(diff, options, report);
  EXPECT_TRUE(diff.clean()) << report.str();

#ifndef PG_OBS_DISABLED
  // The run must have gone through the batched path and said so.
  EXPECT_GT(obs::counter("obs.simd.cells_batched").value(), 0u);
  EXPECT_GT(obs::counter("obs.simd.batches").value(), 0u);
  EXPECT_EQ(obs::gauge("obs.simd.tier").max(),
            static_cast<std::uint64_t>(Tier::kScalar) + 1);
#endif
}

TEST(SimdEngineTest, RejectsBadKernelSpecs) {
  scenario::ScenarioSpec spec;
  spec.kind = "pure_sweep";
  spec.kernel = "vector";  // unknown
  EXPECT_THROW((void)scenario::run_scenario(spec), std::invalid_argument);

  spec.kernel = "reference";
  spec.simd = "avx2";  // tier override without kernel=simd
  EXPECT_THROW((void)scenario::run_scenario(spec), std::invalid_argument);
}

// ------------------------------------------------- kAuto calibration

TEST(TeamCalibrationTest, CutoffIsBoundedAndStable) {
  const std::size_t a = game::team_dispatch_min_work();
  EXPECT_GE(a, 64u * 1024u);
  EXPECT_LE(a, 4u * 1024u * 1024u);
  EXPECT_EQ(game::team_dispatch_min_work(), a);  // probe runs once
#ifndef PG_OBS_DISABLED
  EXPECT_EQ(obs::gauge("obs.solver.team_min_work").max(), a);
#endif
}

}  // namespace
}  // namespace pg
