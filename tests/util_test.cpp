// Unit and property tests for pg::util -- RNG, interpolation, statistics,
// CSV, tables, and error macros.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "util/csv.h"
#include "util/env.h"
#include "util/error.h"
#include "util/interp.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace pg::util {
namespace {

// ---------------------------------------------------------------- error.h

TEST(ErrorTest, CheckThrowsInvalidArgument) {
  EXPECT_THROW(PG_CHECK(false, "boom"), std::invalid_argument);
}

TEST(ErrorTest, CheckPassesOnTrue) {
  EXPECT_NO_THROW(PG_CHECK(true, "fine"));
}

TEST(ErrorTest, AssertThrowsLogicError) {
  EXPECT_THROW(PG_ASSERT(false, "broken"), std::logic_error);
}

TEST(ErrorTest, MessageContainsExpressionAndNote) {
  try {
    PG_CHECK(1 == 2, "the note");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("the note"), std::string::npos);
  }
}

// ------------------------------------------------------------------ rng.h

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformRangeRejectsEmptyInterval) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform(1.0, 1.0), std::invalid_argument);
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIndexZeroThrows) {
  Rng rng(11);
  EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const long long v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NormalScaledMoments) {
  Rng rng(19);
  const int n = 30000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, NormalRejectsNegativeSd) {
  Rng rng(19);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  const int n = 30000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(RngTest, ExponentialPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(RngTest, LognormalPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(37);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, CategoricalRejectsAllZero) {
  Rng rng(37);
  std::vector<double> w{0.0, 0.0};
  EXPECT_THROW((void)rng.categorical(w), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  const auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<std::size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t i : s) EXPECT_LT(i, 50u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(43);
  const auto s = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementRejectsOverdraw) {
  Rng rng(43);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4),
               std::invalid_argument);
}

TEST(RngTest, ForkDecorrelatesStreams) {
  Rng base(47);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng base(47);
  Rng a = base.fork(9);
  Rng b = base.fork(9);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(XoshiroTest, KnownSeedProducesStableStream) {
  // Regression guard: the stream below must never change, or every
  // experiment in EXPERIMENTS.md silently loses reproducibility.
  Xoshiro256pp gen(42);
  const std::uint64_t first = gen.next();
  Xoshiro256pp gen2(42);
  EXPECT_EQ(gen2.next(), first);
  EXPECT_NE(gen.next(), first);
}

// --------------------------------------------------------------- interp.h

TEST(PiecewiseLinearTest, ExactAtKnots) {
  PiecewiseLinear f({0.0, 1.0, 2.0}, {5.0, 7.0, 3.0});
  EXPECT_DOUBLE_EQ(f(0.0), 5.0);
  EXPECT_DOUBLE_EQ(f(1.0), 7.0);
  EXPECT_DOUBLE_EQ(f(2.0), 3.0);
}

TEST(PiecewiseLinearTest, LinearBetweenKnots) {
  PiecewiseLinear f({0.0, 2.0}, {0.0, 4.0});
  EXPECT_DOUBLE_EQ(f(0.5), 1.0);
  EXPECT_DOUBLE_EQ(f(1.5), 3.0);
}

TEST(PiecewiseLinearTest, ClampedOutsideDomain) {
  PiecewiseLinear f({1.0, 2.0}, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(f(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f(3.0), 20.0);
}

TEST(PiecewiseLinearTest, DerivativeOfSegments) {
  PiecewiseLinear f({0.0, 1.0, 3.0}, {0.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(f.derivative(0.5), 2.0);
  EXPECT_DOUBLE_EQ(f.derivative(2.0), -1.0);
  EXPECT_DOUBLE_EQ(f.derivative(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(f.derivative(4.0), 0.0);
}

TEST(PiecewiseLinearTest, IntegralExactForTriangle) {
  PiecewiseLinear f({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
  EXPECT_NEAR(f.integral(0.0, 2.0), 1.0, 1e-12);
  EXPECT_NEAR(f.integral(0.0, 1.0), 0.5, 1e-12);
}

TEST(PiecewiseLinearTest, IntegralWithClampedTails) {
  PiecewiseLinear f({0.0, 1.0}, {2.0, 2.0});
  EXPECT_NEAR(f.integral(-1.0, 2.0), 6.0, 1e-12);
}

TEST(PiecewiseLinearTest, RejectsNonIncreasingKnots) {
  EXPECT_THROW(PiecewiseLinear({0.0, 0.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear({1.0, 0.0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(PiecewiseLinearTest, RejectsSizeMismatch) {
  EXPECT_THROW(PiecewiseLinear({0.0, 1.0, 2.0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(PiecewiseLinearTest, RejectsSingleKnot) {
  EXPECT_THROW(PiecewiseLinear({0.0}, {1.0}), std::invalid_argument);
}

TEST(MonotoneCubicTest, ExactAtKnots) {
  MonotoneCubicSpline f({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 4.0, 9.0});
  for (double x : {0.0, 1.0, 2.0, 3.0}) {
    EXPECT_NEAR(f(x), x * x, 1e-12);
  }
}

TEST(MonotoneCubicTest, PreservesMonotonicity) {
  // Data with a sharp step; a natural cubic would overshoot here.
  MonotoneCubicSpline f({0.0, 1.0, 2.0, 3.0}, {0.0, 0.0, 5.0, 5.0});
  double prev = f(0.0);
  for (double x = 0.01; x <= 3.0; x += 0.01) {
    const double y = f(x);
    EXPECT_GE(y, prev - 1e-12) << "non-monotone at x=" << x;
    prev = y;
  }
}

TEST(MonotoneCubicTest, ClampedOutsideDomain) {
  MonotoneCubicSpline f({0.0, 1.0}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(f(-1.0), 3.0);
  EXPECT_DOUBLE_EQ(f(2.0), 4.0);
}

TEST(MonotoneCubicTest, DerivativeSignMatchesData) {
  MonotoneCubicSpline f({0.0, 1.0, 2.0}, {0.0, 2.0, 3.0});
  EXPECT_GE(f.derivative(0.5), 0.0);
  EXPECT_GE(f.derivative(1.5), 0.0);
}

// ---------------------------------------------------------------- stats.h

TEST(StatsTest, MeanAndVariance) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(variance(v), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(StatsTest, MedianSingleElement) {
  EXPECT_DOUBLE_EQ(median({42.0}), 42.0);
}

TEST(StatsTest, QuantileEndpointsAndMidpoint) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.3), 3.0);
}

TEST(StatsTest, EmptyInputsThrow) {
  EXPECT_THROW((void)mean({}), std::invalid_argument);
  EXPECT_THROW((void)median({}), std::invalid_argument);
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)variance({1.0}), std::invalid_argument);
}

TEST(EmpiricalCdfTest, StepFunctionValues) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf(9.0), 1.0);
}

TEST(EmpiricalCdfTest, InverseIsLeftInverse) {
  EmpiricalCdf cdf({5.0, 1.0, 3.0});  // sorted internally
  EXPECT_DOUBLE_EQ(cdf.inverse(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.34), 3.0);
}

TEST(EmpiricalCdfTest, SurvivalComplement) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.survival(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.survival(0.0), 1.0);
}

TEST(EmpiricalCdfTest, InverseSurvivalRoundTrip) {
  // For the radius<->percentile maps: inverse(1-p) must keep exactly the
  // (1-p) mass at or below the returned radius.
  EmpiricalCdf cdf({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  for (double p : {0.1, 0.2, 0.3, 0.5}) {
    const double r = cdf.inverse(1.0 - p);
    EXPECT_NEAR(cdf.survival(r), p, 0.10001);
    EXPECT_LE(cdf.survival(r), p + 1e-12);
  }
}

TEST(SummaryTest, AllFieldsPopulated) {
  const Summary s = summarize({1.0, 5.0, 3.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

// ------------------------------------------------------------------ csv.h

TEST(CsvTest, ParsesSimpleNumericCsv) {
  const auto rows = parse_numeric_csv("1,2,3\n4,5,6\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0][2], 3.0);
  EXPECT_DOUBLE_EQ(rows[1][0], 4.0);
}

TEST(CsvTest, SkipsBlankLinesAndCrLf) {
  const auto rows = parse_numeric_csv("1,2\r\n\n3,4\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[1][1], 4.0);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_THROW((void)parse_numeric_csv("1,2\n3\n"), std::invalid_argument);
}

TEST(CsvTest, RejectsNonNumeric) {
  EXPECT_THROW((void)parse_numeric_csv("1,abc\n"), std::invalid_argument);
}

TEST(CsvTest, FormatRoundTrip) {
  const std::vector<std::vector<double>> rows{{1.5, 2.5}, {3.0, 4.0}};
  const std::string text = format_csv({"a", "b"}, rows);
  const auto parsed = parse_numeric_csv(
      text.substr(text.find('\n') + 1));  // drop header
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed[0][0], 1.5);
  EXPECT_DOUBLE_EQ(parsed[1][1], 4.0);
}

TEST(CsvTest, MissingFileThrowsAndExistsIsFalse) {
  EXPECT_THROW((void)load_numeric_csv("/nonexistent/x.csv"),
               std::runtime_error);
  EXPECT_FALSE(file_exists("/nonexistent/x.csv"));
}

// ---------------------------------------------------------------- table.h

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"name", "v"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TableTest, RejectsWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, NumericRowFormatting) {
  TextTable t({"x"});
  t.add_numeric_row({1.23456}, 2);
  EXPECT_NE(t.str().find("1.23"), std::string::npos);
}

TEST(FormatTest, PercentFormatting) {
  EXPECT_EQ(format_percent(0.058), "5.8%");
  EXPECT_EQ(format_percent(0.512), "51.2%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch w;
  EXPECT_GE(w.elapsed_seconds(), 0.0);
  EXPECT_GE(w.elapsed_ms(), 0.0);
}

// ------------------------------------------------------------------ env.h

TEST(EnvTest, FallsBackWhenUnsetOrEmpty) {
  ASSERT_EQ(unsetenv("PG_TEST_KNOB"), 0);
  EXPECT_EQ(env_size("PG_TEST_KNOB", 7), 7u);
  EXPECT_EQ(env_double("PG_TEST_KNOB", 0.5), 0.5);
  EXPECT_EQ(env_string("PG_TEST_KNOB", "dflt"), "dflt");
  ASSERT_EQ(setenv("PG_TEST_KNOB", "", 1), 0);
  EXPECT_EQ(env_size("PG_TEST_KNOB", 7), 7u);
  EXPECT_EQ(env_string("PG_TEST_KNOB", "dflt"), "dflt");
  ASSERT_EQ(unsetenv("PG_TEST_KNOB"), 0);
}

TEST(EnvTest, ParsesSetValues) {
  ASSERT_EQ(setenv("PG_TEST_KNOB", "123", 1), 0);
  EXPECT_EQ(env_size("PG_TEST_KNOB", 7), 123u);
  EXPECT_EQ(env_double("PG_TEST_KNOB", 0.5), 123.0);
  EXPECT_EQ(env_string("PG_TEST_KNOB", "dflt"), "123");
  ASSERT_EQ(setenv("PG_TEST_KNOB", "0.25", 1), 0);
  EXPECT_EQ(env_double("PG_TEST_KNOB", 0.5), 0.25);
  ASSERT_EQ(unsetenv("PG_TEST_KNOB"), 0);
}

}  // namespace
}  // namespace pg::util
