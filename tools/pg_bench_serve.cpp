// pg_bench_serve: closed-loop load generator for the pg_serve daemon.
//
// Spins up N client threads, each issuing M back-to-back requests for
// the same (small) scenario spec, and reports throughput plus the
// latency distribution as JSON -- the committed snapshot lives at
// bench/snapshots/BENCH_serve.json. By default the benchmark self-hosts
// a server in-process on a private socket (so the numbers are
// reproducible without a running daemon); point --socket at a live
// server to measure that instead. One warmup request is issued first so
// the measured window is cache-warm -- the steady state a resident
// service exists to provide.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/error.h"

namespace {

constexpr const char* kDefaultSpec =
    "name = serve_bench\n"
    "kind = pure_sweep\n"
    "instances = 200\n"
    "epochs = 10\n"
    "sweep_steps = 3\n"
    "replications = 1\n"
    "real_corpus = false\n";

struct Options {
  std::string socket_path;  // empty = self-host
  std::size_t clients = 4;
  std::size_t requests = 8;
  std::string spec_file;
  std::size_t threads = 0;  // self-hosted server width
  std::string out_file;
};

std::string usage() {
  return
      "pg_bench_serve -- closed-loop load generator for pg_serve\n"
      "  --socket PATH   target a running daemon (default: self-host)\n"
      "  --clients N     concurrent client threads (default 4)\n"
      "  --requests M    requests per client (default 8)\n"
      "  --spec FILE     spec to request (default: a small pure_sweep)\n"
      "  --threads N     self-hosted server executor width (default 0)\n"
      "  --out PATH      write the JSON report there (default stdout)\n";
}

std::size_t parse_size(const std::string& value, const std::string& flag) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  PG_CHECK(!value.empty() && end != nullptr && *end == '\0',
           flag + " expects a non-negative integer, got '" + value + "'");
  return static_cast<std::size_t>(n);
}

Options parse_args(const std::vector<std::string>& args) {
  Options options;
  const auto value = [&](std::size_t& i, const std::string& flag) {
    PG_CHECK(i + 1 < args.size(), flag + " requires a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      std::exit(0);
    } else if (arg == "--socket") {
      options.socket_path = value(i, arg);
    } else if (arg == "--clients") {
      options.clients = parse_size(value(i, arg), arg);
    } else if (arg == "--requests") {
      options.requests = parse_size(value(i, arg), arg);
    } else if (arg == "--spec") {
      options.spec_file = value(i, arg);
    } else if (arg == "--threads") {
      options.threads = parse_size(value(i, arg), arg);
    } else if (arg == "--out") {
      options.out_file = value(i, arg);
    } else {
      PG_CHECK(false, "unknown argument: " + arg + "\n" + usage());
    }
  }
  PG_CHECK(options.clients >= 1 && options.requests >= 1,
           "--clients and --requests must be >= 1");
  return options;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size()));
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const Options options = parse_args(args);

    std::string spec_text = kDefaultSpec;
    if (!options.spec_file.empty()) {
      std::ifstream in(options.spec_file, std::ios::binary);
      PG_CHECK(static_cast<bool>(in), "cannot read " + options.spec_file);
      std::ostringstream text;
      text << in.rdbuf();
      spec_text = text.str();
    }

    // Self-host unless pointed at a live daemon.
    std::unique_ptr<pg::serve::ScenarioServer> server;
    std::string socket_path = options.socket_path;
    if (socket_path.empty()) {
      const std::string tag = std::to_string(::getpid());
      pg::serve::ServeOptions serve;
      serve.socket_path = "/tmp/pg_bench_serve_" + tag + ".sock";
      serve.cache_dir = "/tmp/pg_bench_serve_cache_" + tag;
      serve.threads = options.threads;
      serve.request_workers = std::max<std::size_t>(2, options.clients);
      server = std::make_unique<pg::serve::ScenarioServer>(serve);
      server->start();
      socket_path = serve.socket_path;
    }

    // Warmup: populate the payoff shards so the measured window reports
    // the resident steady state, not one cold retrain.
    {
      pg::serve::Client warm =
          pg::serve::Client::connect_retry(socket_path, 15000);
      const auto response = warm.request(spec_text);
      PG_CHECK(response.ok(), "warmup request failed: " + response.body);
    }

    std::vector<double> latencies_ms;
    latencies_ms.reserve(options.clients * options.requests);
    std::mutex latencies_mutex;
    std::size_t failures = 0;

    const auto bench_start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(options.clients);
    for (std::size_t c = 0; c < options.clients; ++c) {
      clients.emplace_back([&, c] {
        pg::serve::Client client =
            pg::serve::Client::connect_retry(socket_path, 15000);
        std::vector<double> local;
        local.reserve(options.requests);
        std::size_t local_failures = 0;
        for (std::size_t r = 0; r < options.requests; ++r) {
          pg::serve::RequestHeader meta;
          meta.request_id =
              "bench-" + std::to_string(c) + "-" + std::to_string(r);
          const auto start = std::chrono::steady_clock::now();
          const auto response = client.request(spec_text, meta);
          const auto elapsed = std::chrono::steady_clock::now() - start;
          if (!response.ok()) ++local_failures;
          local.push_back(
              std::chrono::duration<double, std::milli>(elapsed).count());
        }
        std::lock_guard<std::mutex> lock(latencies_mutex);
        latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
        failures += local_failures;
      });
    }
    for (std::thread& t : clients) t.join();
    const double elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      bench_start)
            .count();

    if (server != nullptr) server->stop();
    PG_CHECK(failures == 0,
             std::to_string(failures) + " requests answered an error");

    std::sort(latencies_ms.begin(), latencies_ms.end());
    const std::size_t total = latencies_ms.size();
    std::ostringstream json;
    json << "{\n";
    json << "  \"schema_version\": " << pg::serve::kSchemaVersion << ",\n";
    json << "  \"benchmark\": \"pg_bench_serve\",\n";
    json << "  \"clients\": " << options.clients << ",\n";
    json << "  \"requests_per_client\": " << options.requests << ",\n";
    json << "  \"requests_total\": " << total << ",\n";
    json << "  \"elapsed_seconds\": " << elapsed_seconds << ",\n";
    json << "  \"throughput_rps\": "
         << (elapsed_seconds > 0.0 ? static_cast<double>(total) /
                                         elapsed_seconds
                                   : 0.0)
         << ",\n";
    json << "  \"latency_ms\": {\n";
    json << "    \"p50\": " << percentile(latencies_ms, 0.50) << ",\n";
    json << "    \"p90\": " << percentile(latencies_ms, 0.90) << ",\n";
    json << "    \"p99\": " << percentile(latencies_ms, 0.99) << ",\n";
    json << "    \"max\": " << (total > 0 ? latencies_ms.back() : 0.0)
         << "\n";
    json << "  }\n";
    json << "}\n";

    if (!options.out_file.empty()) {
      std::ofstream out(options.out_file, std::ios::trunc);
      PG_CHECK(static_cast<bool>(out),
               "cannot write output file: " + options.out_file);
      out << json.str();
      std::cout << "wrote " << options.out_file << "\n";
    } else {
      std::cout << json.str();
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
