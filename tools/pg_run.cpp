// pg_run: the unified scenario driver.
//
// One binary replaces the eight hand-rolled bench mains: `--list` shows
// the registered paper reproductions, `--scenario`/`--spec` executes any
// of them (or a custom spec file) through the scenario engine on the
// runtime Executor, `--set` tweaks individual knobs, `--sweep` expands a
// cross-product grid over any spec keys in one run, `--out` picks the
// result sink (text, JSON, CSV), and `--compare` diffs two JSON result
// artifacts for regression triage (exit 1 past `--tolerance`; the
// tests/golden/ baselines are maintained with `--update-baseline`).
// Sweeps also shard across processes: `--shard i/N` runs a deterministic
// stride of the grid and emits a partial artifact, `--merge` stitches
// the N partials back into the canonical result, and `--shard-exec N`
// forks N local workers over one shared cache dir and merges for you.
// See src/scenario/ for the engine.
#include <iostream>
#include <string>
#include <vector>

#include "robust/faultpoint.h"
#include "scenario/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  pg::scenario::CliOptions options;
  try {
    // $PG_FAULTS arms the deterministic fault-injection table for this
    // process AND every worker --shard-exec forks (inherited across
    // fork); --fault flags replace it inside run_cli.
    pg::robust::configure_from_env();
    options = pg::scenario::parse_cli(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return pg::scenario::run_cli(options, std::cout, std::cerr);
}
