// pg_serve: the resident scenario service.
//
// Daemon mode (`pg_serve --socket PATH [opts]`) stands up one long-lived
// process that owns a shared Executor, warm payoff-cache shards, and a
// disk cache, then serves ScenarioSpec requests over a local socket with
// the versioned framing in src/serve/protocol.h -- so a fleet of short
// client invocations (CI jobs, notebooks, sweep drivers) reuses one warm
// substrate instead of paying cold-start and retrain costs per process.
// SIGTERM/SIGINT drain gracefully: admitted requests finish, the cache
// spills to disk, and --metrics-out/--trace artifacts are written.
//
// Client mode (`pg_serve --request SPECFILE --socket PATH`) sends one
// spec file and prints the JSON response envelope (exit 0 on ok, 3 when
// the server answered a structured error). `pg_run --compare` accepts
// the envelope directly. `--retries`/`--read-timeout-ms` bound transport
// flakiness (each retry reconnects fresh, with exponential backoff), and
// `--ping` is the body-less health check (protocol minor 1).
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "robust/faultpoint.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/error.h"

namespace {

pg::serve::ScenarioServer* g_server = nullptr;

void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

std::string usage() {
  return
      "pg_serve -- resident scenario service (protocol PGSERVE/" +
      std::to_string(pg::serve::kProtocolMajor) + "." +
      std::to_string(pg::serve::kProtocolMinor) + ")\n"
      "\n"
      "daemon mode:\n"
      "  pg_serve --socket PATH [options]\n"
      "  --threads N           executor width shared by all requests\n"
      "                        (0 = all cores)\n"
      "  --workers N           concurrent scenario executions (default 2)\n"
      "  --queue-limit N       reject (queue_full) past N queued (default 64)\n"
      "  --max-request-bytes N longest accepted spec body (default 1 MiB)\n"
      "  --cache-dir DIR       payoff disk cache (default $PG_CACHE_DIR)\n"
      "  --cache-max-bytes N   evict oldest disk shards past N bytes\n"
      "  --no-cache            disable payoff memoization\n"
      "  --trace PATH          Chrome trace written at shutdown\n"
      "  --metrics-out PATH    metrics snapshot written at shutdown\n"
      "  (SIGTERM/SIGINT drain: finish admitted requests, spill, exit)\n"
      "\n"
      "client mode:\n"
      "  pg_serve --request SPECFILE --socket PATH [options]\n"
      "  pg_serve --ping --socket PATH [options]   health check (pong)\n"
      "  --id ID               request id (default auto req-<n>)\n"
      "  --priority N          scheduling priority (lower runs first)\n"
      "  --deadline-ms N       fail with deadline_exceeded if still\n"
      "                        queued after N ms\n"
      "  --timeout-ms N        connect retry window (default 15000)\n"
      "  --retries N           re-send on transport failure up to N more\n"
      "                        times, reconnecting fresh with exponential\n"
      "                        backoff (default 0; structured errors never\n"
      "                        retry)\n"
      "  --read-timeout-ms N   fail a response read blocked past N ms\n"
      "                        (default 0 = wait forever)\n"
      "  --out-file PATH       write the response envelope there\n"
      "  exit codes: 0 ok, 1 local error, 2 usage, 3 server-side error\n";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PG_CHECK(static_cast<bool>(in), "cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::size_t parse_size(const std::string& value, const std::string& flag) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  PG_CHECK(!value.empty() && end != nullptr && *end == '\0',
           flag + " expects a non-negative integer, got '" + value + "'");
  return static_cast<std::size_t>(n);
}

struct CliOptions {
  bool help = false;
  bool ping = false;         // client mode: health check, no spec body
  std::string request_file;  // non-empty = client mode
  pg::serve::ServeOptions serve;
  pg::serve::RequestHeader meta;
  std::size_t timeout_ms = 15000;
  std::size_t retries = 0;
  std::size_t read_timeout_ms = 0;
  std::string out_file;
};

CliOptions parse_args(const std::vector<std::string>& args) {
  CliOptions options;
  const auto value = [&](std::size_t& i, const std::string& flag) {
    PG_CHECK(i + 1 < args.size(), flag + " requires a value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--socket") {
      options.serve.socket_path = value(i, arg);
    } else if (arg == "--threads") {
      options.serve.threads = parse_size(value(i, arg), arg);
    } else if (arg == "--workers") {
      options.serve.request_workers = parse_size(value(i, arg), arg);
    } else if (arg == "--queue-limit") {
      options.serve.queue_limit = parse_size(value(i, arg), arg);
    } else if (arg == "--max-request-bytes") {
      options.serve.max_request_bytes = parse_size(value(i, arg), arg);
    } else if (arg == "--cache-dir") {
      options.serve.cache_dir = value(i, arg);
    } else if (arg == "--cache-max-bytes") {
      options.serve.cache_max_bytes = parse_size(value(i, arg), arg);
    } else if (arg == "--no-cache") {
      options.serve.use_cache = false;
    } else if (arg == "--trace") {
      options.serve.trace = value(i, arg);
    } else if (arg == "--metrics-out") {
      options.serve.metrics_out = value(i, arg);
    } else if (arg == "--request") {
      options.request_file = value(i, arg);
    } else if (arg == "--ping") {
      options.ping = true;
    } else if (arg == "--retries") {
      options.retries = parse_size(value(i, arg), arg);
    } else if (arg == "--read-timeout-ms") {
      options.read_timeout_ms = parse_size(value(i, arg), arg);
    } else if (arg == "--id") {
      options.meta.request_id = value(i, arg);
    } else if (arg == "--priority") {
      options.meta.priority = parse_size(value(i, arg), arg);
    } else if (arg == "--deadline-ms") {
      options.meta.deadline_ms = parse_size(value(i, arg), arg);
    } else if (arg == "--timeout-ms") {
      options.timeout_ms = parse_size(value(i, arg), arg);
    } else if (arg == "--out-file") {
      options.out_file = value(i, arg);
    } else {
      PG_CHECK(false, "unknown argument: " + arg + "\n" + usage());
    }
  }
  PG_CHECK(options.help || !options.serve.socket_path.empty(),
           "--socket is required\n" + usage());
  PG_CHECK(!(options.ping && !options.request_file.empty()),
           "--ping and --request are mutually exclusive");
  return options;
}

int run_daemon(const CliOptions& options) {
  pg::serve::ScenarioServer server(options.serve);
  g_server = &server;
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);
  server.start();
  server.wait();  // returns after a drain triggered by SIGTERM/SIGINT
  g_server = nullptr;
  return 0;
}

int run_client(const CliOptions& options) {
  pg::serve::Client::RetryPolicy policy;
  policy.attempts = options.retries + 1;
  policy.connect_timeout_ms = options.timeout_ms;
  policy.read_timeout_ms = options.read_timeout_ms;
  const pg::serve::Client::Response response =
      options.ping
          ? pg::serve::Client::ping_retry(options.serve.socket_path, policy)
          : pg::serve::Client::request_retry(options.serve.socket_path,
                                             read_file(options.request_file),
                                             policy, options.meta);
  if (!options.out_file.empty()) {
    std::ofstream out(options.out_file, std::ios::trunc);
    PG_CHECK(static_cast<bool>(out),
             "cannot write output file: " + options.out_file);
    out << response.body;
    std::cout << "wrote " << options.out_file << "\n";
  } else {
    std::cout << response.body;
  }
  if (!response.ok()) {
    std::cerr << "error: server answered status=" << response.header.status
              << " for request " << response.header.request_id << "\n";
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  CliOptions options;
  try {
    options = parse_args(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  try {
    if (options.help) {
      std::cout << usage();
      return 0;
    }
    pg::robust::configure_from_env();  // $PG_FAULTS chaos specs
    return (options.request_file.empty() && !options.ping)
               ? run_daemon(options)
               : run_client(options);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
